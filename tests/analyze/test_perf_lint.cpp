// Paper-derived descriptor lint rules (ALS-L*), exercised with synthetic
// descriptors plus the real ParticleFilter model that motivated ALS-L1.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analyze/recorder.hpp"
#include "analyze/sanitize.hpp"
#include "apps/particlefilter/particlefilter.hpp"
#include "perf/device.hpp"

namespace altis::analyze {
namespace {

bool has_rule(const report& r, const std::string& id) {
    return std::any_of(r.findings().begin(), r.findings().end(),
                       [&](const finding& f) { return f.rule == id; });
}

node descriptor_node(perf::kernel_stats k, const perf::device_spec& dev) {
    node n;
    n.kind = node_kind::kernel;
    n.kernel = k.name;
    n.stats = std::move(k);
    n.device = &dev;
    n.simulated = true;
    return n;
}

report lint_one(perf::kernel_stats k, const char* device) {
    command_graph g;
    g.nodes.push_back(descriptor_node(std::move(k), perf::device_by_name(device)));
    report r;
    lint_descriptors(g, r);
    return r;
}

TEST(PerfLint, L1PowWithConstantExponent) {
    perf::kernel_stats k;
    k.name = "pf_like";
    k.global_items = 1024;
    k.wg_size = 128;
    k.pow_const_exp_ops = 98.0;
    // Device-independent: the 2x GPU / 6x FPGA trap of Sec. 3.3.
    EXPECT_TRUE(has_rule(lint_one(k, "rtx_2080"), "ALS-L1"));
    EXPECT_TRUE(has_rule(lint_one(k, "stratix_10"), "ALS-L1"));
    k.pow_const_exp_ops = 0.0;
    EXPECT_FALSE(has_rule(lint_one(k, "rtx_2080"), "ALS-L1"));
}

TEST(PerfLint, L2SimdMustDivideWorkGroupSize) {
    perf::kernel_stats k;
    k.name = "bad_simd";
    k.global_items = 4096;
    k.wg_size = 6;
    k.simd = 4;  // 6 % 4 != 0: attribute silently dropped (Sec. 5.2)
    EXPECT_TRUE(has_rule(lint_one(k, "stratix_10"), "ALS-L2"));
    // GPUs have no num_simd_work_items attribute: rule is FPGA-only.
    EXPECT_FALSE(has_rule(lint_one(k, "rtx_2080"), "ALS-L2"));
    k.wg_size = 8;
    EXPECT_FALSE(has_rule(lint_one(k, "stratix_10"), "ALS-L2"));
}

TEST(PerfLint, L3UnrollBeyondTripCount) {
    perf::kernel_stats k;
    k.name = "over_unrolled";
    k.form = perf::kernel_form::single_task;
    perf::loop_info l;
    l.name = "inner";
    l.trip_count = 4.0;
    l.unroll = 16;
    k.loops.push_back(l);
    EXPECT_TRUE(has_rule(lint_one(k, "agilex"), "ALS-L3"));
    k.loops[0].unroll = 4;
    EXPECT_FALSE(has_rule(lint_one(k, "agilex"), "ALS-L3"));
}

TEST(PerfLint, L3UnrollOnCongestedLocalMemory) {
    perf::kernel_stats k;
    k.name = "arbitered";
    k.global_items = 4096;
    k.wg_size = 64;
    k.pattern = perf::local_pattern::congested;
    k.local_arrays = 1;
    k.local_mem_bytes = 1024;
    k.local_accesses = 8.0;
    k.unroll = 4;  // multiplies arbitrated ports on a timing-dirty design
    EXPECT_TRUE(has_rule(lint_one(k, "stratix_10"), "ALS-L3"));
    k.unroll = 1;
    EXPECT_FALSE(has_rule(lint_one(k, "stratix_10"), "ALS-L3"));
}

TEST(PerfLint, L4LibraryScanOnFpga) {
    perf::kernel_stats k;
    k.name = "scan_onedpl";
    k.global_items = 1 << 20;
    k.wg_size = 256;
    k.library = true;
    EXPECT_TRUE(has_rule(lint_one(k, "stratix_10"), "ALS-L4"));
    // The same call on a GPU is exactly what the paper recommends (Sec. 5.1).
    EXPECT_FALSE(has_rule(lint_one(k, "a100"), "ALS-L4"));
}

TEST(PerfLint, L6AccessorObjectArgsExceedTheDevice) {
    // SRAD's Sec. 4 synthesis failure: eleven accessor *objects*.
    perf::kernel_stats k;
    k.name = "srad_like";
    k.global_items = 4096;
    k.wg_size = 64;
    k.accessor_args = 11;
    k.pass_accessor_objects = true;
    k.replication = 2;  // two compute units of the accessor-heavy kernel
    const report r = lint_one(k, "stratix_10");
    ASSERT_TRUE(has_rule(r, "ALS-L6"));
    k.pass_accessor_objects = false;  // pointer-passing rewrite fits
    EXPECT_FALSE(has_rule(lint_one(k, "stratix_10"), "ALS-L6"));
}

TEST(PerfLint, ParticleFilterCudaModelCarriesThePowTrap) {
    const auto& gpu = perf::device_by_name("rtx_2080");
    recorder rec;
    const auto region = apps::particlefilter::region(
        apps::particlefilter::flavor::floatopt, Variant::cuda, gpu, 1);
    for (const auto& k : region.all_kernels())
        rec.record_simulated_kernel(k, gpu);
    EXPECT_TRUE(has_rule(run_all(rec), "ALS-L1"));
}

TEST(PerfLint, ParticleFilterMigratedModelIsClean) {
    const auto& gpu = perf::device_by_name("rtx_2080");
    recorder rec;
    const auto region = apps::particlefilter::region(
        apps::particlefilter::flavor::floatopt, Variant::sycl_opt, gpu, 1);
    for (const auto& k : region.all_kernels())
        rec.record_simulated_kernel(k, gpu);
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-L1"));
}

TEST(PerfLint, SimulatedNodesSkipHazardPasses) {
    // Descriptor nodes have no command order: only ALS-L* may fire.
    const auto& fpga = perf::device_by_name("stratix_10");
    recorder rec;
    perf::kernel_stats k;
    k.name = "descriptor_only";
    k.library = true;
    rec.record_simulated_kernel(k, fpga);
    const report r = run_all(rec);
    for (const finding& f : r.findings())
        EXPECT_EQ(f.rule.rfind("ALS-L", 0), 0u) << f.rule;
}

}  // namespace
}  // namespace altis::analyze
