// Minimal image output: binary PPM (P6) writing plus the colormaps the
// example renderers use. An open-source release of the suite ships visual
// artifacts; these helpers keep that possible without any image library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace altis::apps {

struct rgb8 {
    std::uint8_t r = 0, g = 0, b = 0;
    friend bool operator==(const rgb8&, const rgb8&) = default;
};

/// Writes a binary P6 PPM. Throws std::runtime_error on I/O failure.
void write_ppm(const std::string& path, std::span<const rgb8> pixels,
               std::size_t width, std::size_t height);

/// Reads back a binary P6 PPM (for round-trip tests). Throws on malformed
/// input. Returns pixels row-major; width/height via out-params.
[[nodiscard]] std::vector<rgb8> read_ppm(const std::string& path,
                                         std::size_t& width,
                                         std::size_t& height);

/// Gamma-2 tonemap from linear [0,1] color (the raytracer's output space).
[[nodiscard]] rgb8 tonemap(float r, float g, float b);

/// Smooth iteration-count colormap for Mandelbrot renders.
[[nodiscard]] rgb8 escape_colormap(std::uint16_t iters, int max_iters);

}  // namespace altis::apps
