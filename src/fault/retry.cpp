#include "fault/retry.hpp"

#include <cmath>

#include "core/result_database.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"
#include "resilience/cancel.hpp"

namespace altis::fault {

double retry_policy::backoff_ms(int retry) const {
    return backoff_base_ms * std::pow(backoff_multiplier, retry);
}

const char* outcome::label() const {
    switch (st) {
        case status::ok: return attempts > 1 ? "retried" : "ok";
        case status::failed: return "failed";
        case status::skipped: return "skipped";
        case status::deadline: return "deadline";
        case status::cancelled: return "cancelled";
        case status::quarantined: return "quarantined";
    }
    return "?";
}

outcome::status status_from_label(const std::string& label) {
    if (label == "ok" || label == "retried") return outcome::status::ok;
    if (label == "skipped") return outcome::status::skipped;
    if (label == "deadline") return outcome::status::deadline;
    if (label == "cancelled") return outcome::status::cancelled;
    if (label == "quarantined") return outcome::status::quarantined;
    return outcome::status::failed;
}

outcome run_guarded(const std::function<void()>& fn, const retry_policy& policy,
                    bool fail_fast, const retry_listener& on_retry) {
    outcome oc;
    const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
    for (int attempt = 1;; ++attempt) {
        oc.attempts = attempt;
        try {
            fn();
            return oc;
        } catch (const injected_fault& f) {
            oc.error = f.what();
            if (!f.retryable() || attempt >= max_attempts) {
                if (metrics::collecting())
                    metrics::instruments::fault_failures().add();
                if (fail_fast) throw;
                oc.st = outcome::status::failed;
                return oc;
            }
            const double backoff = policy.backoff_ms(attempt - 1);
            oc.backoff_ms += backoff;
            if (metrics::collecting()) {
                metrics::instruments::fault_retries().add();
                metrics::instruments::fault_backoff_ns().add(
                    static_cast<std::uint64_t>(backoff * 1e6));
            }
            if (on_retry) on_retry(attempt, oc.error, backoff);
        } catch (const resilience::cancelled_error& c) {
            // Cancellation is not a fault of the configuration: the
            // deadline supervisor (or a signal) pulled the plug. Never
            // retried -- the token stays cancelled for the rest of this
            // configuration's scope, so another attempt would die at its
            // first checkpoint.
            if (metrics::collecting() &&
                c.reason() == resilience::cancel_reason::deadline)
                metrics::instruments::resilience_deadline_misses().add();
            if (fail_fast) throw;
            oc.st = c.reason() == resilience::cancel_reason::deadline
                        ? outcome::status::deadline
                        : outcome::status::cancelled;
            oc.error = c.what();
            return oc;
        } catch (const std::exception& e) {
            // Anything that is not an injected fault is a real defect of the
            // configuration -- retrying cannot help.
            if (metrics::collecting())
                metrics::instruments::fault_failures().add();
            if (fail_fast) throw;
            oc.st = outcome::status::failed;
            oc.error = e.what();
            return oc;
        }
    }
}

void record_outcome(ResultDatabase& db, const std::string& config,
                    const outcome& oc) {
    db.add_outcome({config, oc.label(), oc.attempts, oc.error});
}

}  // namespace altis::fault
