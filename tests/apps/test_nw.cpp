#include "apps/nw/nw.hpp"

#include <gtest/gtest.h>

namespace altis::apps::nw {
namespace {

TEST(Nw, GoldenMatchesHandComputedAlignment) {
    // Two tiny identical sequences: the diagonal accumulates +5 per match.
    params p;
    p.n = 16;  // one tile
    workload w;
    w.seq1.assign(p.n, 3);
    w.seq2.assign(p.n, 3);
    const auto score = golden(p, w);
    // Diagonal cell (i,i) = 5*(i+1).
    for (std::size_t i = 0; i < p.n; ++i)
        EXPECT_EQ(score[i * p.n + i], static_cast<int>(5 * (i + 1)));
}

TEST(Nw, GoldenMismatchPenalties) {
    params p;
    p.n = 16;
    workload w;
    w.seq1.assign(p.n, 1);
    w.seq2.assign(p.n, 2);  // all mismatches
    const auto score = golden(p, w);
    // Best first cell: max(diag -3, gaps -20) = -3.
    EXPECT_EQ(score[0], -3);
}

struct Case {
    const char* device;
    Variant variant;
};

class NwVariants : public ::testing::TestWithParam<Case> {};

TEST_P(NwVariants, FunctionalRunVerifiesExactly) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r = run(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, NwVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda},
                      Case{"rtx_2080", Variant::sycl_base},
                      Case{"a100", Variant::sycl_opt},
                      Case{"stratix_10", Variant::fpga_base},
                      Case{"stratix_10", Variant::fpga_opt},
                      Case{"agilex", Variant::fpga_opt}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant);
    });

// Sec. 3.3: raising the inlining threshold recovers up to 2x for NW.
TEST(Nw, InliningThresholdRecoversBaselineLoss) {
    // Kernel-region comparison at size 3 (small sizes are launch-bound, so
    // the kernel-side effect only shows where kernels carry real work).
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto base = simulate_region(region(Variant::sycl_base, rtx, 3), rtx,
                                      perf::runtime_kind::sycl);
    const auto opt = simulate_region(region(Variant::sycl_opt, rtx, 3), rtx,
                                     perf::runtime_kind::sycl);
    const double gain = base.kernel_ms() / opt.kernel_ms();
    EXPECT_GT(gain, 1.2);
    EXPECT_LT(gain, 2.6);
}

// Sec. 5.4: at sizes 2-3 NW on the Stratix 10 runs at about half the CPU's
// speed -- the arbiter-stalled local memory cannot be fixed by unrolling.
TEST(Nw, FpgaSlowerThanCpuAtLargeSizes) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto& cpu = perf::device_by_name("xeon_6128");
    const auto fpga = simulate_region(region(Variant::fpga_opt, s10, 3), s10,
                                      perf::runtime_kind::sycl);
    const auto host = simulate_region(region(Variant::sycl_opt, cpu, 3), cpu,
                                      perf::runtime_kind::sycl);
    EXPECT_GT(fpga.total_ms(), host.total_ms());
}

TEST(Nw, CongestedPatternInDescriptors) {
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto design = fpga_design(s10, 1);
    ASSERT_EQ(design.size(), 1u);
    EXPECT_EQ(design[0].pattern, perf::local_pattern::congested);
    EXPECT_EQ(design[0].unroll, 1);  // unrolling would violate timing
    EXPECT_EQ(design[0].replication, 16);
    EXPECT_EQ(fpga_design(perf::device_by_name("agilex"), 1)[0].replication, 8);
}

TEST(Nw, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "stratix_10";
    cfg.variant = Variant::fpga_opt;
    const AppResult r = run(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(cfg.variant, dev, cfg.size), dev,
                                     perf::runtime_kind::sycl);
    // 3% tolerance: the region models the average diagonal length while the
    // run sees each diagonal exactly (per-launch floors differ slightly).
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.03);
}

}  // namespace
}  // namespace altis::apps::nw
