#include "core/registry.hpp"

#include <stdexcept>

namespace altis {

const char* to_string(Variant v) {
    switch (v) {
        case Variant::cuda: return "cuda";
        case Variant::sycl_base: return "sycl_base";
        case Variant::sycl_opt: return "sycl_opt";
        case Variant::fpga_base: return "fpga_base";
        case Variant::fpga_opt: return "fpga_opt";
    }
    return "unknown";
}

Registry& Registry::instance() {
    static Registry registry;
    return registry;
}

void Registry::add(AppInfo info) {
    if (find(info.name) != nullptr)
        throw std::logic_error("application registered twice: " + info.name);
    apps_.push_back(std::move(info));
}

const AppInfo* Registry::find(const std::string& name) const {
    for (const auto& app : apps_)
        if (app.name == name) return &app;
    return nullptr;
}

}  // namespace altis
