// Session lifecycle: the collection switch, single-active-session rule,
// registry reset at start, sampler series, env-tunable sample rate, and the
// end-to-end path from an instrumented syclite workload into a snapshot.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "metrics/instruments.hpp"
#include "metrics/session.hpp"
#include "sycl/syclite.hpp"

namespace altis::metrics {
namespace {

session::config no_sampler() {
    session::config cfg;
    cfg.sample_hz = 0.0;
    return cfg;
}

const metric_value* find_metric(const snapshot& snap, const char* name) {
    for (const metric_value& m : snap.metrics)
        if (m.info.name == name) return &m;
    return nullptr;
}

std::int64_t metric_or_zero(const snapshot& snap, const char* name) {
    const metric_value* m = find_metric(snap, name);
    return m != nullptr ? m->value : 0;
}

TEST(Session, TogglesCollectingAndFreezesDuration) {
    EXPECT_FALSE(collecting());
    session s("lifecycle", no_sampler());
    EXPECT_TRUE(collecting());
    EXPECT_EQ(session::current(), &s);
    EXPECT_EQ(s.name(), "lifecycle");

    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    s.stop();
    EXPECT_FALSE(collecting());

    const double frozen = s.take_snapshot().duration_ns;
    EXPECT_GT(frozen, 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(s.take_snapshot().duration_ns, frozen);
    s.stop();  // idempotent
    EXPECT_EQ(s.take_snapshot().duration_ns, frozen);
}

TEST(Session, SecondConcurrentSessionThrows) {
    session s("outer", no_sampler());
    EXPECT_THROW(session("inner", no_sampler()), std::logic_error);
    // The failed construction must not have clobbered the active session.
    EXPECT_EQ(session::current(), &s);
    EXPECT_TRUE(collecting());
}

TEST(Session, StartResetsRegisteredInstruments) {
    counter& scratch = registry::instance().get_counter(
        "test_session_scratch_total", "scratch counter for reset test");
    scratch.add(5);
    const std::uint64_t epoch_before = collection_epoch();

    session s("reset", no_sampler());
    EXPECT_EQ(scratch.value(), 0u);
    EXPECT_EQ(metric_or_zero(s.take_snapshot(), "test_session_scratch_total"),
              0);
    EXPECT_GT(collection_epoch(), epoch_before);
}

TEST(Session, InstrumentedWorkloadLandsInSnapshot) {
    session s("workload", no_sampler());

    {
        syclite::queue q("xeon_6128");
        syclite::buffer<float> b(1024);
        perf::kernel_stats k;
        k.name = "metrics_workload";
        for (int pass = 0; pass < 3; ++pass) {
            q.submit([&](syclite::handler& h) {
                auto acc = h.get_access(b, syclite::access_mode::read_write);
                h.parallel_for(
                    syclite::nd_range<1>(syclite::range<1>(1024),
                                         syclite::range<1>(64)),
                    k, [=](syclite::nd_item<1> it) {
                        acc[it.get_global_id(0)] += 1.0f;
                    });
            });
        }
        q.wait();
    }

    s.stop();
    const snapshot snap = s.take_snapshot();

    EXPECT_EQ(metric_or_zero(snap, "syclite_queue_submissions_total"), 3);
    EXPECT_GE(metric_or_zero(snap, "syclite_queue_waits_total"), 1);
    EXPECT_GE(metric_or_zero(snap, "syclite_pool_jobs_total"), 3);
    EXPECT_GE(metric_or_zero(snap, "syclite_pool_chunks_total"), 3);
    EXPECT_GT(metric_or_zero(snap, "syclite_pool_worker_busy_ns"), 0);
    EXPECT_GE(metric_or_zero(snap, "syclite_buffer_allocs_total"), 1);
    EXPECT_GE(metric_or_zero(snap, "syclite_buffer_peak_bytes"),
              static_cast<std::int64_t>(1024 * sizeof(float)));
    // Every buffer allocated inside the session was also destroyed inside
    // it, so the live-bytes level must balance back to zero.
    EXPECT_EQ(metric_or_zero(snap, "syclite_buffer_live_bytes"), 0);

    // One latency observation per submission.
    const metric_value* lat =
        find_metric(snap, "syclite_queue_submit_latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->hist.count, 3u);

    // In-flight kernels must have returned to zero after wait().
    EXPECT_EQ(metric_or_zero(snap, "syclite_queue_inflight_kernels"), 0);
}

TEST(Session, PipeOccupancyWatermarkNeverExceedsCapacity) {
    session s("pipes", no_sampler());

    constexpr std::size_t kCapacity = 8;
    constexpr std::size_t kItems = 4096;
    {
        syclite::pipe<int> p(kCapacity, "hwm_pipe");
        std::thread producer([&] {
            int batch[32];
            std::size_t sent = 0;
            while (sent < kItems) {
                const std::size_t take = std::min<std::size_t>(32, kItems - sent);
                for (std::size_t i = 0; i < take; ++i)
                    batch[i] = static_cast<int>(sent + i);
                p.write_burst(batch, take);
                sent += take;
            }
        });
        int batch[32];
        long sum = 0;
        std::size_t got = 0;
        while (got < kItems) {
            const std::size_t take = std::min<std::size_t>(32, kItems - got);
            p.read_burst(batch, take);
            for (std::size_t i = 0; i < take; ++i) sum += batch[i];
            got += take;
        }
        producer.join();
        EXPECT_EQ(sum, static_cast<long>(kItems * (kItems - 1) / 2));
    }

    s.stop();
    const snapshot snap = s.take_snapshot();
    const std::int64_t hwm =
        metric_or_zero(snap, "syclite_pipe_occupancy_hwm");
    EXPECT_GT(hwm, 0);
    EXPECT_LE(hwm, static_cast<std::int64_t>(kCapacity));
    EXPECT_EQ(metric_or_zero(snap, "syclite_pipe_items_total"),
              static_cast<std::int64_t>(kItems));
}

TEST(Session, SamplerProducesMonotoneSeries) {
    // Force at least one gauge/watermark registration before the sampler
    // starts so it has something to sample.
    instruments::usm_live_bytes();
    instruments::usm_peak_bytes();

    session::config cfg;
    cfg.sample_hz = 2000.0;
    session s("sampler", cfg);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    s.stop();

    ASSERT_FALSE(s.series().empty());
    const double duration = s.take_snapshot().duration_ns;
    for (const sampled_series& series : s.series()) {
        ASSERT_FALSE(series.samples.empty());
        double prev = -1.0;
        for (const auto& [t, v] : series.samples) {
            EXPECT_GE(t, prev);
            EXPECT_LE(t, duration);
            prev = t;
        }
    }
}

TEST(Session, SamplerDisabledStillTakesFinalSample) {
    instruments::usm_live_bytes();
    session s("nosampler", no_sampler());
    s.stop();
    // stop() takes one closing sample even with the thread disabled, so the
    // series always reflects the end state.
    EXPECT_FALSE(s.series().empty());
}

TEST(SessionConfig, SampleHzFromEnvironment) {
    ASSERT_EQ(setenv("ALTIS_METRICS_HZ", "7.5", 1), 0);
    EXPECT_DOUBLE_EQ(session::config::from_env().sample_hz, 7.5);

    ASSERT_EQ(setenv("ALTIS_METRICS_HZ", "0", 1), 0);
    EXPECT_DOUBLE_EQ(session::config::from_env().sample_hz, 0.0);

    // Unparseable values fall back to the default.
    ASSERT_EQ(setenv("ALTIS_METRICS_HZ", "fast", 1), 0);
    EXPECT_DOUBLE_EQ(session::config::from_env().sample_hz, 100.0);

    ASSERT_EQ(unsetenv("ALTIS_METRICS_HZ"), 0);
    EXPECT_DOUBLE_EQ(session::config::from_env().sample_hz, 100.0);
}

}  // namespace
}  // namespace altis::metrics
