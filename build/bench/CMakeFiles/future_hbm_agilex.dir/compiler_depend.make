# Empty compiler generated dependencies file for future_hbm_agilex.
# This may be replaced when dependencies are built.
