#include "sycl/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace syclite {
namespace {

TEST(ThreadPool, CoversAllIndicesExactlyOnce) {
    thread_pool pool(3);
    constexpr std::size_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
    thread_pool pool(2);
    bool called = false;
    pool.parallel_for(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ThreadPool, WorksWithZeroWorkers) {
    thread_pool pool(0);  // may degenerate to caller-only on 1-core hosts
    std::size_t sum = 0;
    pool.parallel_for(100, [&](std::size_t i) { sum += i; });
    // Caller-only execution is sequential, so plain += is safe there; with
    // workers this test still passes because we only check reachability.
    EXPECT_GT(sum, 0u);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
    thread_pool pool(2);
    std::atomic<long> total{0};
    for (int round = 0; round < 50; ++round)
        pool.parallel_for(1000, [&](std::size_t) { total.fetch_add(1); });
    EXPECT_EQ(total.load(), 50000);
}

TEST(ThreadPool, GlobalPoolSingleton) {
    EXPECT_EQ(&thread_pool::global(), &thread_pool::global());
}

}  // namespace
}  // namespace syclite
