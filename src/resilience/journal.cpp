#include "resilience/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <set>
#include <stdexcept>
#include <system_error>

namespace altis::resilience {

namespace {

// ---- writing --------------------------------------------------------------

void append_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// Shortest round-tripping decimal form: the resumed sweep must reproduce
/// the original doubles bit-for-bit or byte-identity is off the table.
void append_double(std::string& out, double v) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
    if (ec != std::errc{}) {
        out += "0";
        return;
    }
    out.append(buf, ptr);
}

// ---- parsing --------------------------------------------------------------

/// Cursor over one line of the journal's JSON subset. Parse failures set
/// ok=false and stick; callers check once at the end.
struct cursor {
    const char* p;
    const char* end;
    bool ok = true;

    void skip_ws() {
        while (p < end && (*p == ' ' || *p == '\t')) ++p;
    }
    bool consume(char c) {
        skip_ws();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        ok = false;
        return false;
    }
    [[nodiscard]] bool peek(char c) {
        skip_ws();
        return p < end && *p == c;
    }

    std::string parse_string() {
        std::string s;
        if (!consume('"')) return s;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                s += c;
                continue;
            }
            if (p >= end) {
                ok = false;
                return s;
            }
            const char esc = *p++;
            switch (esc) {
                case '"': s += '"'; break;
                case '\\': s += '\\'; break;
                case '/': s += '/'; break;
                case 'n': s += '\n'; break;
                case 't': s += '\t'; break;
                case 'r': s += '\r'; break;
                case 'b': s += '\b'; break;
                case 'f': s += '\f'; break;
                case 'u': {
                    if (end - p < 4) {
                        ok = false;
                        return s;
                    }
                    unsigned code = 0;
                    const auto [ptr, ec] =
                        std::from_chars(p, p + 4, code, 16);
                    if (ec != std::errc{} || ptr != p + 4 || code > 0xFF) {
                        // The writer only emits \u00XX for control bytes.
                        ok = false;
                        return s;
                    }
                    p += 4;
                    s += static_cast<char>(code);
                    break;
                }
                default: ok = false; return s;
            }
        }
        if (p >= end) {
            ok = false;
            return s;
        }
        ++p;  // closing quote
        return s;
    }

    double parse_number() {
        skip_ws();
        double v = 0.0;
        const auto [ptr, ec] = std::from_chars(p, end, v);
        if (ec != std::errc{}) {
            ok = false;
            return 0.0;
        }
        p = ptr;
        return v;
    }

    /// Skip any value (future-proofing: unknown keys are ignored).
    void skip_value() {
        skip_ws();
        if (p >= end) {
            ok = false;
            return;
        }
        if (*p == '"') {
            (void)parse_string();
        } else if (*p == '{') {
            ++p;
            if (peek('}')) {
                ++p;
                return;
            }
            do {
                (void)parse_string();
                consume(':');
                skip_value();
            } while (ok && peek(',') && consume(','));
            consume('}');
        } else if (*p == '[') {
            ++p;
            if (peek(']')) {
                ++p;
                return;
            }
            do {
                skip_value();
            } while (ok && peek(',') && consume(','));
            consume(']');
        } else if (std::strncmp(p, "null", 4) == 0 && end - p >= 4) {
            p += 4;
        } else if (std::strncmp(p, "true", 4) == 0 && end - p >= 4) {
            p += 4;
        } else if (std::strncmp(p, "false", 5) == 0 && end - p >= 5) {
            p += 5;
        } else {
            (void)parse_number();
        }
    }
};

std::vector<double> parse_number_array(cursor& c) {
    std::vector<double> out;
    if (!c.consume('[')) return out;
    if (c.peek(']')) {
        c.consume(']');
        return out;
    }
    do {
        out.push_back(c.parse_number());
    } while (c.ok && c.peek(',') && c.consume(','));
    c.consume(']');
    return out;
}

journal_series parse_series(cursor& c) {
    journal_series s;
    if (!c.consume('{')) return s;
    if (c.peek('}')) {
        c.consume('}');
        return s;
    }
    do {
        const std::string key = c.parse_string();
        c.consume(':');
        if (key == "test") s.test = c.parse_string();
        else if (key == "atts") s.atts = c.parse_string();
        else if (key == "unit") s.unit = c.parse_string();
        else if (key == "values") s.values = parse_number_array(c);
        else c.skip_value();
    } while (c.ok && c.peek(',') && c.consume(','));
    c.consume('}');
    return s;
}

}  // namespace

std::string to_line(const journal_entry& e) {
    std::string out = "{\"config\":";
    append_escaped(out, e.config);
    out += ",\"status\":";
    append_escaped(out, e.status);
    out += ",\"attempts\":" + std::to_string(e.attempts);
    out += ",\"backoff_ms\":";
    append_double(out, e.backoff_ms);
    if (!e.error.empty()) {
        out += ",\"error\":";
        append_escaped(out, e.error);
    }
    if (e.value) {
        out += ",\"value\":";
        append_double(out, *e.value);
    }
    if (!e.log.empty()) {
        out += ",\"log\":";
        append_escaped(out, e.log);
    }
    if (!e.results.empty()) {
        out += ",\"results\":[";
        for (std::size_t i = 0; i < e.results.size(); ++i) {
            const journal_series& s = e.results[i];
            if (i > 0) out += ',';
            out += "{\"test\":";
            append_escaped(out, s.test);
            out += ",\"atts\":";
            append_escaped(out, s.atts);
            out += ",\"unit\":";
            append_escaped(out, s.unit);
            out += ",\"values\":[";
            for (std::size_t j = 0; j < s.values.size(); ++j) {
                if (j > 0) out += ',';
                append_double(out, s.values[j]);
            }
            out += "]}";
        }
        out += ']';
    }
    out += '}';
    return out;
}

std::optional<journal_entry> parse_line(const std::string& line) {
    cursor c{line.data(), line.data() + line.size()};
    journal_entry e;
    bool saw_config = false;
    if (!c.consume('{')) return std::nullopt;
    if (!c.peek('}')) {
        do {
            const std::string key = c.parse_string();
            c.consume(':');
            if (key == "config") {
                e.config = c.parse_string();
                saw_config = true;
            } else if (key == "status") {
                e.status = c.parse_string();
            } else if (key == "attempts") {
                e.attempts = static_cast<int>(c.parse_number());
            } else if (key == "backoff_ms") {
                e.backoff_ms = c.parse_number();
            } else if (key == "error") {
                e.error = c.parse_string();
            } else if (key == "value") {
                e.value = c.parse_number();
            } else if (key == "log") {
                e.log = c.parse_string();
            } else if (key == "results") {
                if (!c.consume('[')) break;
                if (c.peek(']')) {
                    c.consume(']');
                } else {
                    do {
                        e.results.push_back(parse_series(c));
                    } while (c.ok && c.peek(',') && c.consume(','));
                    c.consume(']');
                }
            } else {
                c.skip_value();
            }
        } while (c.ok && c.peek(',') && c.consume(','));
    }
    c.consume('}');
    if (!c.ok || !saw_config) return std::nullopt;
    return e;
}

// ---- writer ---------------------------------------------------------------

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

std::string header_line(const std::string& sweep) {
    std::string h = "{\"altis_journal\":1,\"sweep\":";
    append_escaped(h, sweep);
    h += "}\n";
    return h;
}

}  // namespace

journal_writer::journal_writer(std::string path, const std::string& sweep,
                               bool append)
    : path_(std::move(path)) {
    if (append) {
        fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
        if (fd_ < 0) throw_errno("journal: cannot open " + path_);
        // A resumed journal that vanished (or was empty/torn down to
        // nothing) still needs its header.
        if (::lseek(fd_, 0, SEEK_END) == 0) write_line(header_line(sweep));
        return;
    }
    // Fresh journal: land the header atomically so a crash between create
    // and first append cannot leave a headerless file behind.
    const std::string tmp = path_ + ".tmp";
    const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) throw_errno("journal: cannot create " + tmp);
    const std::string h = header_line(sweep);
    if (::write(tfd, h.data(), h.size()) !=
        static_cast<ssize_t>(h.size())) {
        ::close(tfd);
        throw_errno("journal: cannot write " + tmp);
    }
    ::fsync(tfd);
    ::close(tfd);
    if (::rename(tmp.c_str(), path_.c_str()) != 0)
        throw_errno("journal: cannot rename " + tmp + " to " + path_);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0) throw_errno("journal: cannot open " + path_);
}

journal_writer::~journal_writer() {
    if (fd_ >= 0) ::close(fd_);
}

void journal_writer::write_line(const std::string& line) {
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw_errno("journal: write failed on " + path_);
        }
        off += static_cast<std::size_t>(n);
    }
    ::fsync(fd_);
}

void journal_writer::append(const journal_entry& e) {
    write_line(to_line(e) + "\n");
}

// ---- reader ---------------------------------------------------------------

std::optional<journal_file> read_journal(const std::string& path,
                                         const std::string& expected_sweep) {
    if (::access(path.c_str(), F_OK) != 0)
        return std::nullopt;  // never started: degrade to a fresh run
    std::ifstream in(path);
    if (!in) throw std::runtime_error("journal: cannot read " + path);
    journal_file jf;
    std::string line;
    std::set<std::string> seen;
    bool saw_header = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (!saw_header) {
            // Header is a JSON object too; reuse the entry parser's cursor
            // machinery by hand for its two fields.
            cursor c{line.data(), line.data() + line.size()};
            int version = 0;
            if (c.consume('{')) {
                do {
                    const std::string key = c.parse_string();
                    c.consume(':');
                    if (key == "altis_journal")
                        version = static_cast<int>(c.parse_number());
                    else if (key == "sweep")
                        jf.sweep = c.parse_string();
                    else
                        c.skip_value();
                } while (c.ok && c.peek(',') && c.consume(','));
                c.consume('}');
            }
            if (!c.ok || version != 1)
                throw std::runtime_error(
                    "journal: " + path +
                    " is not an altis journal (bad header)");
            if (jf.sweep != expected_sweep)
                throw std::runtime_error(
                    "journal: " + path + " belongs to sweep '" + jf.sweep +
                    "', not '" + expected_sweep + "'");
            saw_header = true;
            continue;
        }
        // A SIGKILL mid-append leaves at most one torn final line; anything
        // unparseable is treated as not-yet-completed work. Duplicate
        // configs keep the first occurrence -- that is the entry the
        // original run's report was built from.
        if (auto e = parse_line(line)) {
            if (seen.insert(e->config).second)
                jf.entries.push_back(std::move(*e));
        }
    }
    if (!saw_header)
        return std::nullopt;  // empty file: nothing was ever journaled
    return jf;
}

}  // namespace altis::resilience
