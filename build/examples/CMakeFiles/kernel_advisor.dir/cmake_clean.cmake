file(REMOVE_RECURSE
  "CMakeFiles/kernel_advisor.dir/kernel_advisor.cpp.o"
  "CMakeFiles/kernel_advisor.dir/kernel_advisor.cpp.o.d"
  "kernel_advisor"
  "kernel_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
