file(REMOVE_RECURSE
  "libaltis_apps.a"
)
