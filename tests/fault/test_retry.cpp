// Retry/backoff behaviour of the resilient harness, outcome recording, and
// the reproducibility contract: the same plan (same seed) over the same
// sweep yields a byte-for-byte identical report.
#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/common/suite.hpp"
#include "core/result_database.hpp"
#include "fault/inject.hpp"
#include "support/mini_json.hpp"

namespace altis::fault {
namespace {

TEST(FaultRetry, CleanRunIsOkFirstAttempt) {
    const outcome oc = run_guarded([] {}, retry_policy{});
    EXPECT_TRUE(oc.succeeded());
    EXPECT_EQ(oc.attempts, 1);
    EXPECT_DOUBLE_EQ(oc.backoff_ms, 0.0);
    EXPECT_STREQ(oc.label(), "ok");
}

TEST(FaultRetry, RetryableFaultRetriesWithExponentialBackoff) {
    // alloc@1x2: the first two allocation probes fault, the third succeeds.
    plan p = plan::parse("alloc@1x2");
    scope s(p);
    std::vector<double> backoffs;
    const outcome oc = run_guarded(
        [] { maybe_inject(op_kind::alloc, "usm_device"); }, retry_policy{},
        false,
        [&](int, const std::string&, double ms) { backoffs.push_back(ms); });
    EXPECT_TRUE(oc.succeeded());
    EXPECT_EQ(oc.attempts, 3);
    EXPECT_STREQ(oc.label(), "retried");
    ASSERT_EQ(backoffs.size(), 2u);
    EXPECT_DOUBLE_EQ(backoffs[0], 25.0);
    EXPECT_DOUBLE_EQ(backoffs[1], 50.0);
    EXPECT_DOUBLE_EQ(oc.backoff_ms, 75.0);
}

TEST(FaultRetry, NonRetryableFaultFailsImmediately) {
    plan p = plan::parse("launch@1");
    scope s(p);
    const outcome oc = run_guarded(
        [] { maybe_inject(op_kind::launch, "kernel"); }, retry_policy{});
    EXPECT_FALSE(oc.succeeded());
    EXPECT_EQ(oc.attempts, 1);
    EXPECT_STREQ(oc.label(), "failed");
    EXPECT_NE(oc.error.find("injected launch fault"), std::string::npos);
}

TEST(FaultRetry, ExhaustedRetriesFail) {
    plan p = plan::parse("alloc@1x99");
    scope s(p);
    retry_policy policy;
    policy.max_attempts = 3;
    const outcome oc = run_guarded(
        [] { maybe_inject(op_kind::alloc, "usm_host"); }, policy);
    EXPECT_FALSE(oc.succeeded());
    EXPECT_EQ(oc.attempts, 3);
    EXPECT_STREQ(oc.label(), "failed");
}

TEST(FaultRetry, FailFastRethrows) {
    plan p = plan::parse("launch@1");
    scope s(p);
    EXPECT_THROW(
        (void)run_guarded([] { maybe_inject(op_kind::launch, "k"); },
                          retry_policy{}, /*fail_fast=*/true),
        launch_fault);
}

TEST(FaultRetry, OrdinaryExceptionIsNotRetried) {
    int calls = 0;
    const outcome oc = run_guarded(
        [&] {
            ++calls;
            throw std::runtime_error("verification mismatch");
        },
        retry_policy{});
    EXPECT_FALSE(oc.succeeded());
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(oc.error, "verification mismatch");
}

TEST(FaultRetry, SameSeedSameOutcomes) {
    // Probabilistic plan driven twice from identical fresh state: the
    // sequence of outcomes (attempts and statuses) must match exactly.
    auto drive = [] {
        plan p = plan::parse("alloc%0.4;seed=123");
        scope s(p);
        std::string log;
        for (int i = 0; i < 20; ++i) {
            const outcome oc = run_guarded(
                [] { maybe_inject(op_kind::alloc, "usm_shared"); },
                retry_policy{});
            log += std::string(oc.label()) + ":" +
                   std::to_string(oc.attempts) + ";";
        }
        return log;
    };
    EXPECT_EQ(drive(), drive());
}

TEST(FaultRetry, FailedConfigStillYieldsWellFormedJson) {
    ResultDatabase db;
    db.add_result("total_time", "app=kmeans", "ms", 12.5);
    outcome failed;
    failed.st = outcome::status::failed;
    failed.attempts = 3;
    failed.error = "injected alloc fault on 'usm_device' (rule alloc@1x99)";
    record_outcome(db, "KMeans/fpga_opt/stratix_10/size2", failed);
    outcome ok;
    record_outcome(db, "NW/fpga_opt/stratix_10/size2", ok);

    std::ostringstream out;
    db.dump_json(out);
    const mini_json::value v = mini_json::parse(out.str());
    ASSERT_TRUE(v.has("results"));
    ASSERT_TRUE(v.has("outcomes"));
    const auto& outcomes = v.at("outcomes").as_array();
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].at("config").as_string(),
              "KMeans/fpga_opt/stratix_10/size2");
    EXPECT_EQ(outcomes[0].at("status").as_string(), "failed");
    EXPECT_DOUBLE_EQ(outcomes[0].at("attempts").as_number(), 3.0);
    EXPECT_NE(outcomes[0].at("error").as_string().find("injected alloc"),
              std::string::npos);
    EXPECT_EQ(outcomes[1].at("status").as_string(), "ok");
    EXPECT_FALSE(db.all_outcomes_ok());
}

TEST(FaultRetry, JsonKeepsLegacyArrayShapeWithoutOutcomes) {
    ResultDatabase db;
    db.add_result("total_time", "app=nw", "ms", 1.0);
    std::ostringstream out;
    db.dump_json(out);
    EXPECT_EQ(out.str().front(), '[');  // historical bare-array shape
    const mini_json::value v = mini_json::parse(out.str());
    EXPECT_EQ(v.as_array().size(), 1u);
}

TEST(FaultRetry, MergeAppendsResultsAndOutcomes) {
    ResultDatabase main_db, attempt;
    attempt.add_result("total_time", "app=srad", "ms", 3.0);
    outcome oc;
    oc.attempts = 2;
    record_outcome(attempt, "SRAD/sycl_opt/rtx_2080/size1", oc);
    main_db.merge(attempt);
    ASSERT_EQ(main_db.results().size(), 1u);
    EXPECT_EQ(main_db.results()[0].values.size(), 1u);
    ASSERT_EQ(main_db.outcomes().size(), 1u);
    EXPECT_EQ(main_db.outcomes()[0].status, "retried");
}

// The acceptance scenario: a plan injecting one allocation failure and one
// pipe stall into a Fig. 4-style sweep completes, marks exactly the affected
// configurations failed/retried, and is byte-for-byte reproducible.
std::string fig4_style_sweep(const std::string& spec) {
    plan p = plan::parse(spec);
    scope s(p);
    ResultDatabase db;
    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;
        for (const Variant v : {Variant::fpga_base, Variant::fpga_opt}) {
            const auto co = bench::run_config(e, v, "stratix_10", 1);
            bench::record_config_outcome(
                db, bench::config_label(e, v, "stratix_10", 1), co, true);
            if (co.ms) db.add_result("total_ms",
                                     bench::config_label(e, v, "stratix_10", 1),
                                     "ms", *co.ms);
        }
    }
    std::ostringstream out;
    db.dump_json(out);
    return out.str();
}

TEST(FaultRetry, InjectedSweepIsByteForByteReproducible) {
    const std::string spec = "alloc@3;pipe:*@1;transfer%0.1;seed=9";
    const std::string a = fig4_style_sweep(spec);
    const std::string b = fig4_style_sweep(spec);
    EXPECT_EQ(a, b);

    // The sweep completed and recorded every configuration.
    const mini_json::value v = mini_json::parse(a);
    const auto& outcomes = v.at("outcomes").as_array();
    std::size_t expected = 0;
    for (const auto& e : bench::suite())
        if (e.in_fig45) expected += 2;
    EXPECT_EQ(outcomes.size(), expected);

    // At least one config degraded (the pipe stall is non-retryable) and at
    // least one config survived.
    std::size_t failed = 0, okish = 0;
    for (const auto& oc : outcomes) {
        const std::string& st = oc.at("status").as_string();
        if (st == "failed") ++failed;
        if (st == "ok" || st == "retried") ++okish;
    }
    EXPECT_GE(failed, 1u);
    EXPECT_GE(okish, 1u);
}

TEST(FaultRetry, AllocFaultIsRetriedInSweep) {
    // alloc@1: exactly the first allocation probe faults; the first config's
    // retry then succeeds, every other config is clean.
    plan p = plan::parse("alloc@1");
    scope s(p);
    const auto& e = bench::suite().front();
    const auto co = bench::run_config(e, Variant::fpga_base, "stratix_10", 1);
    EXPECT_TRUE(co.oc.succeeded());
    EXPECT_EQ(co.oc.attempts, 2);
    EXPECT_STREQ(co.oc.label(), "retried");
    ASSERT_TRUE(co.ms.has_value());
    EXPECT_GT(*co.ms, 0.0);

    const auto clean = bench::run_config(e, Variant::fpga_base, "stratix_10", 2);
    EXPECT_TRUE(clean.oc.succeeded());
    EXPECT_EQ(clean.oc.attempts, 1);
}

TEST(FaultRetry, NonexistentConfigIsSkippedNotFailed) {
    // sycl_opt cannot target an FPGA: the config is reported skipped.
    const auto& e = bench::suite().front();
    const auto co = bench::run_config(e, Variant::sycl_opt, "stratix_10", 1);
    EXPECT_TRUE(co.skipped);
    EXPECT_STREQ(co.oc.label(), "skipped");
    EXPECT_FALSE(co.ms.has_value());
}

}  // namespace
}  // namespace altis::fault
