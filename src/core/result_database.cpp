#include "core/result_database.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <iomanip>
#include <ostream>

namespace altis {
namespace {

// Failed trials are stored as FLT_MAX, matching the Altis convention; they
// are excluded from every statistic except error_fraction().
bool is_failure(double v) { return v >= FLT_MAX; }

std::vector<double> valid_values(const std::vector<double>& values) {
    std::vector<double> out;
    out.reserve(values.size());
    for (double v : values)
        if (!is_failure(v)) out.push_back(v);
    return out;
}

}  // namespace

double Result::failure_sentinel() { return FLT_MAX; }

double Result::min() const {
    auto v = valid_values(values);
    if (v.empty()) return failure_sentinel();
    return *std::min_element(v.begin(), v.end());
}

double Result::max() const {
    auto v = valid_values(values);
    if (v.empty()) return failure_sentinel();
    return *std::max_element(v.begin(), v.end());
}

double Result::mean() const {
    auto v = valid_values(values);
    if (v.empty()) return failure_sentinel();
    double sum = 0.0;
    for (double x : v) sum += x;
    return sum / static_cast<double>(v.size());
}

double Result::median() const {
    auto v = valid_values(values);
    if (v.empty()) return failure_sentinel();
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double Result::stddev() const {
    auto v = valid_values(values);
    if (v.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double x : v) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double Result::error_fraction() const {
    if (values.empty()) return 0.0;
    std::size_t failures = 0;
    for (double v : values)
        if (is_failure(v)) ++failures;
    return static_cast<double>(failures) / static_cast<double>(values.size());
}

Result& ResultDatabase::series(const std::string& test, const std::string& atts,
                               const std::string& unit) {
    for (auto& r : results_)
        if (r.test == test && r.atts == atts && r.unit == unit) return r;
    results_.push_back(Result{test, atts, unit, {}});
    return results_.back();
}

void ResultDatabase::add_result(const std::string& test, const std::string& atts,
                                const std::string& unit, double value) {
    series(test, atts, unit).values.push_back(value);
}

void ResultDatabase::add_failure(const std::string& test, const std::string& atts,
                                 const std::string& unit) {
    series(test, atts, unit).values.push_back(Result::failure_sentinel());
}

void ResultDatabase::add_outcome(RunOutcome outcome) {
    outcomes_.push_back(std::move(outcome));
}

bool ResultDatabase::all_outcomes_ok() const {
    for (const auto& oc : outcomes_)
        if (oc.status == "failed" || oc.status == "deadline" ||
            oc.status == "cancelled")
            return false;
    return true;
}

void ResultDatabase::merge(const ResultDatabase& other) {
    for (const auto& r : other.results_) {
        Result& mine = series(r.test, r.atts, r.unit);
        mine.values.insert(mine.values.end(), r.values.begin(), r.values.end());
    }
    outcomes_.insert(outcomes_.end(), other.outcomes_.begin(),
                     other.outcomes_.end());
}

const Result* ResultDatabase::find(const std::string& test,
                                   const std::string& atts) const {
    for (const auto& r : results_)
        if (r.test == test && r.atts == atts) return &r;
    return nullptr;
}

double ResultDatabase::geomean(const std::string& test) const {
    double log_sum = 0.0;
    std::size_t n = 0;
    for (const auto& r : results_) {
        if (r.test != test) continue;
        const double m = r.mean();
        if (is_failure(m) || m <= 0.0) continue;
        log_sum += std::log(m);
        ++n;
    }
    return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

void ResultDatabase::dump_summary(std::ostream& out) const {
    out << std::left << std::setw(28) << "test" << std::setw(36) << "atts"
        << std::setw(8) << "unit" << std::right << std::setw(12) << "median"
        << std::setw(12) << "mean" << std::setw(12) << "stddev"
        << std::setw(12) << "min" << std::setw(12) << "max" << '\n';
    for (const auto& r : results_) {
        out << std::left << std::setw(28) << r.test << std::setw(36) << r.atts
            << std::setw(8) << r.unit << std::right << std::fixed
            << std::setprecision(4) << std::setw(12) << r.median()
            << std::setw(12) << r.mean() << std::setw(12) << r.stddev()
            << std::setw(12) << r.min() << std::setw(12) << r.max() << '\n';
        out.unsetf(std::ios::fixed);
    }
    if (outcomes_.empty()) return;
    std::size_t ok = 0, retried = 0, failed = 0, skipped = 0;
    std::size_t deadline = 0, quarantined = 0, cancelled = 0;
    for (const auto& oc : outcomes_) {
        if (oc.status == "ok") ++ok;
        else if (oc.status == "retried") ++retried;
        else if (oc.status == "failed") ++failed;
        else if (oc.status == "deadline") ++deadline;
        else if (oc.status == "quarantined") ++quarantined;
        else if (oc.status == "cancelled") ++cancelled;
        else ++skipped;
    }
    out << "\noutcomes: " << ok << " ok, " << retried << " retried, " << failed
        << " failed, " << skipped << " skipped";
    // Resilience buckets appear only when populated, so reports from runs
    // without --deadline-ms/--resume stay byte-identical to older output.
    if (deadline != 0) out << ", " << deadline << " deadline";
    if (quarantined != 0) out << ", " << quarantined << " quarantined";
    if (cancelled != 0) out << ", " << cancelled << " cancelled";
    out << '\n';
    for (const auto& oc : outcomes_) {
        if (oc.status == "ok") continue;
        out << "  [" << oc.status << "] " << oc.config;
        if (oc.attempts > 1) out << " (" << oc.attempts << " attempts)";
        if (!oc.error.empty()) out << " -- " << oc.error;
        out << '\n';
    }
}

namespace {

void json_escape(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default: out << c;
        }
    }
    out << '"';
}

}  // namespace

namespace {

void dump_results_json(std::ostream& out, const std::vector<Result>& results,
                       const char* indent, const char* close_indent) {
    out << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        out << indent << "{\"test\": ";
        json_escape(out, r.test);
        out << ", \"atts\": ";
        json_escape(out, r.atts);
        out << ", \"unit\": ";
        json_escape(out, r.unit);
        out << ", \"values\": [";
        for (std::size_t v = 0; v < r.values.size(); ++v) {
            if (v > 0) out << ", ";
            if (is_failure(r.values[v]))
                out << "null";
            else
                out << r.values[v];
        }
        out << "], \"mean\": " << r.mean() << ", \"median\": " << r.median()
            << ", \"stddev\": " << r.stddev() << "}";
        out << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << close_indent << "]";
}

}  // namespace

void ResultDatabase::dump_json(std::ostream& out) const {
    if (outcomes_.empty()) {
        // Historical shape: a bare array of series.
        dump_results_json(out, results_, "  ", "");
        out << "\n";
        return;
    }
    out << "{\n  \"results\": ";
    dump_results_json(out, results_, "    ", "  ");
    out << ",\n  \"outcomes\": [\n";
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
        const RunOutcome& oc = outcomes_[i];
        out << "    {\"config\": ";
        json_escape(out, oc.config);
        out << ", \"status\": ";
        json_escape(out, oc.status);
        out << ", \"attempts\": " << oc.attempts << ", \"error\": ";
        json_escape(out, oc.error);
        out << "}" << (i + 1 < outcomes_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

void ResultDatabase::dump_csv(std::ostream& out) const {
    out << "test,atts,unit,values...\n";
    for (const auto& r : results_) {
        out << r.test << ',' << r.atts << ',' << r.unit;
        for (double v : r.values) out << ',' << v;
        out << '\n';
    }
}

}  // namespace altis
