#include "apps/common/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace altis::apps {

void write_ppm(const std::string& path, std::span<const rgb8> pixels,
               std::size_t width, std::size_t height) {
    if (pixels.size() != width * height)
        throw std::invalid_argument("write_ppm: pixel count mismatch");
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_ppm: cannot open " + path);
    out << "P6\n" << width << ' ' << height << "\n255\n";
    out.write(reinterpret_cast<const char*>(pixels.data()),
              static_cast<std::streamsize>(pixels.size() * sizeof(rgb8)));
    if (!out) throw std::runtime_error("write_ppm: write failed: " + path);
}

std::vector<rgb8> read_ppm(const std::string& path, std::size_t& width,
                           std::size_t& height) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_ppm: cannot open " + path);
    std::string magic;
    std::size_t maxval = 0;
    in >> magic >> width >> height >> maxval;
    if (magic != "P6" || maxval != 255)
        throw std::runtime_error("read_ppm: unsupported PPM variant");
    in.get();  // single whitespace after the header
    std::vector<rgb8> pixels(width * height);
    in.read(reinterpret_cast<char*>(pixels.data()),
            static_cast<std::streamsize>(pixels.size() * sizeof(rgb8)));
    if (!in) throw std::runtime_error("read_ppm: truncated file");
    return pixels;
}

rgb8 tonemap(float r, float g, float b) {
    auto channel = [](float v) {
        v = std::clamp(v, 0.0f, 1.0f);
        return static_cast<std::uint8_t>(255.99f * std::sqrt(v));
    };
    return {channel(r), channel(g), channel(b)};
}

rgb8 escape_colormap(std::uint16_t iters, int max_iters) {
    if (iters >= max_iters) return {0, 0, 0};  // interior of the set
    const float t =
        std::log1p(static_cast<float>(iters)) /
        std::log1p(static_cast<float>(max_iters));
    // A simple blue-gold ramp.
    const float r = std::clamp(3.0f * t - 0.6f, 0.0f, 1.0f);
    const float g = std::clamp(2.2f * t * t, 0.0f, 1.0f);
    const float b = std::clamp(0.4f + 1.2f * t - 1.4f * t * t, 0.0f, 1.0f);
    return {static_cast<std::uint8_t>(255.0f * r),
            static_cast<std::uint8_t>(255.0f * g),
            static_cast<std::uint8_t>(255.0f * b)};
}

}  // namespace altis::apps
