// Ablation: XORWOW (cuRAND's default) vs Philox4x32-10 (oneMKL) throughput
// on the host -- the two generators the Raytracing migration swaps between
// (Sec. 3.3). Philox pays ten rounds of multiplies per 128-bit block but
// needs no stored state; XORWOW is a few shifts/xors per 32-bit draw.
#include <benchmark/benchmark.h>

#include "rng/philox.hpp"
#include "rng/xorwow.hpp"

namespace {

void BM_Xorwow(benchmark::State& state) {
    altis::rng::xorwow gen(12345);
    std::uint32_t sink = 0;
    for (auto _ : state) sink ^= gen.next_u32();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xorwow);

void BM_Philox(benchmark::State& state) {
    altis::rng::philox4x32 gen(12345);
    std::uint32_t sink = 0;
    for (auto _ : state) sink ^= gen.next_u32();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Philox);

void BM_PhiloxBlock(benchmark::State& state) {
    // Counter-mode block generation, as kernels use it (no sequential state).
    std::uint32_t ctr = 0;
    std::uint32_t sink = 0;
    for (auto _ : state) {
        const auto out =
            altis::rng::philox4x32::block({ctr++, 0u, 0u, 0u}, {7u, 9u});
        sink ^= out[0] ^ out[3];
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 4);  // 4 draws per block
}
BENCHMARK(BM_PhiloxBlock);

void BM_XorwowFloat(benchmark::State& state) {
    altis::rng::xorwow gen(99);
    float sink = 0.0f;
    for (auto _ : state) sink += gen.next_float();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_XorwowFloat);

void BM_PhiloxFloat(benchmark::State& state) {
    altis::rng::philox4x32 gen(99);
    float sink = 0.0f;
    for (auto _ : state) sink += gen.next_float();
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_PhiloxFloat);

}  // namespace

BENCHMARK_MAIN();
