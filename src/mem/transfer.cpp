#include "mem/transfer.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "metrics/instruments.hpp"

namespace altis::mem {

namespace {

std::atomic<parallel_runner> g_runner{nullptr};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Copies currently executing through an installed runner. set_parallel_runner
/// spins on this before returning, so a runner (and the pool behind it) can
/// never be torn down underneath an in-flight graph transfer node.
std::atomic<int> g_inflight{0};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables)

/// Chunk granularity: big enough that per-chunk scheduling cost is noise
/// against the memcpy, small enough that a 64 MiB copy still spreads across
/// every worker.
constexpr std::size_t kChunkBytes = std::size_t{2} * 1024 * 1024;

[[nodiscard]] std::size_t threshold_from_env() {
    const char* v = std::getenv("ALTIS_MEM_PCOPY_MIN");
    if (v != nullptr) {
        char* end = nullptr;
        const unsigned long long n = std::strtoull(v, &end, 10);
        if (end != v && *end == '\0') return static_cast<std::size_t>(n);
    }
    return std::size_t{4} * 1024 * 1024;
}

struct copy_job {
    char* dst;
    const char* src;
    std::size_t bytes;
};

void copy_chunk(void* ctx, std::size_t i) {
    const auto* job = static_cast<const copy_job*>(ctx);
    const std::size_t off = i * kChunkBytes;
    const std::size_t len =
        off + kChunkBytes > job->bytes ? job->bytes - off : kChunkBytes;
    std::memcpy(job->dst + off, job->src + off, len);
}

}  // namespace

void set_parallel_runner(parallel_runner r) {
    g_runner.store(r, std::memory_order_release);
    // Drain: a copy that loaded the previous runner may still be executing.
    // Copies that raced past the store re-check the pointer after raising
    // g_inflight (see copy_bytes), so once the count reaches zero no copy can
    // use the old runner again and the caller may safely tear it down.
    while (g_inflight.load(std::memory_order_acquire) != 0)
        std::this_thread::yield();
}

parallel_runner parallel_runner_installed() {
    return g_runner.load(std::memory_order_acquire);
}

std::size_t parallel_copy_threshold() {
    static const std::size_t threshold = threshold_from_env();
    return threshold;
}

void copy_bytes(void* dst, const void* src, std::size_t bytes) {
    if (bytes == 0) return;
    if (g_runner.load(std::memory_order_acquire) == nullptr ||
        bytes < parallel_copy_threshold()) {
        std::memcpy(dst, src, bytes);
        return;
    }
    // Enter the in-flight window first, then re-read the runner: if a
    // concurrent set_parallel_runner(nullptr) won the race its drain loop
    // already observed count 0, so this copy must not use the stale pointer.
    g_inflight.fetch_add(1, std::memory_order_acq_rel);
    struct inflight_release {
        ~inflight_release() {
            g_inflight.fetch_sub(1, std::memory_order_acq_rel);
        }
    } release;
    const parallel_runner run = g_runner.load(std::memory_order_acquire);
    if (run == nullptr) {
        std::memcpy(dst, src, bytes);
        return;
    }
    copy_job job{static_cast<char*>(dst), static_cast<const char*>(src),
                 bytes};
    const std::size_t chunks = (bytes + kChunkBytes - 1) / kChunkBytes;
    run(chunks, &copy_chunk, &job);
    if (altis::metrics::collecting()) {
        namespace mi = altis::metrics::instruments;
        mi::mem_parallel_copies().add();
        mi::mem_parallel_copy_bytes().add(bytes);
    }
}

}  // namespace altis::mem
