# Empty compiler generated dependencies file for ablation_fpga_knobs.
# This may be replaced when dependencies are built.
