file(REMOVE_RECURSE
  "libaltis_perf.a"
)
