# Empty dependencies file for altis_run.
# This may be replaced when dependencies are built.
