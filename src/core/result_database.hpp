// Altis-style result database: collects named metric samples across trials
// and derives summary statistics. Mirrors the ResultDatabase shipped with the
// original Altis/SHOC suites, which every Level-2 application reports into.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace altis {

/// One metric series: all trial values recorded under (test, attributes, unit).
struct Result {
    std::string test;   ///< metric name, e.g. "kernel_time"
    std::string atts;   ///< free-form attributes, e.g. "size=3,device=stratix10"
    std::string unit;   ///< e.g. "ms", "GB/s"
    std::vector<double> values;

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double median() const;
    [[nodiscard]] double stddev() const;
    /// Fraction of trials flagged as failed (recorded as FLT_MAX in Altis).
    [[nodiscard]] double error_fraction() const;

    /// Sentinel recorded for a failed trial, as in the original suite.
    static double failure_sentinel();
};

/// Accumulates results over trials; used by every benchmark harness binary.
class ResultDatabase {
public:
    /// Record one sample. Samples with identical (test, atts, unit) aggregate
    /// into the same series.
    void add_result(const std::string& test, const std::string& atts,
                    const std::string& unit, double value);

    /// Record a failed trial for the series (counts toward error_fraction).
    void add_failure(const std::string& test, const std::string& atts,
                     const std::string& unit);

    [[nodiscard]] const std::vector<Result>& results() const { return results_; }

    /// Find a series; returns nullptr if absent.
    [[nodiscard]] const Result* find(const std::string& test,
                                     const std::string& atts) const;

    /// Geometric mean over the means of every series whose test name matches.
    /// Non-positive means are skipped (they would poison the logarithm).
    [[nodiscard]] double geomean(const std::string& test) const;

    /// Human-readable summary table (min/max/mean/median/stddev per series).
    void dump_summary(std::ostream& out) const;
    /// Machine-readable CSV: test,atts,unit,trial0,trial1,...
    void dump_csv(std::ostream& out) const;
    /// Machine-readable JSON: array of {test, atts, unit, values, mean,
    /// median, stddev}. Strings are escaped; failed trials appear as null.
    void dump_json(std::ostream& out) const;

    void clear() { results_.clear(); }

private:
    Result& series(const std::string& test, const std::string& atts,
                   const std::string& unit);
    std::vector<Result> results_;
};

}  // namespace altis
