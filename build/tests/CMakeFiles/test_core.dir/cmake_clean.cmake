file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_option_parser.cpp.o"
  "CMakeFiles/test_core.dir/core/test_option_parser.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_registry.cpp.o"
  "CMakeFiles/test_core.dir/core/test_registry.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_result_database.cpp.o"
  "CMakeFiles/test_core.dir/core/test_result_database.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
