// Seeded race corpus for the happens-before engine: every racy shape must
// surface its exact ALS-R*/ALS-D1 rule id, every ordered shape must stay
// silent, and with no session active the shadow hooks must do nothing at
// all. Racing accesses are *observed* (observe_read/observe_write), never
// performed, so the corpus itself is clean under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/sanitize.hpp"
#include "analyze/shadow.hpp"
#include "apps/common/app.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"
#include "sycl/syclite.hpp"

namespace altis::analyze {
namespace {

perf::kernel_stats named(const char* n) {
    perf::kernel_stats k;
    k.name = n;
    return k;
}

bool has_rule(const report& r, const std::string& id) {
    for (const finding& f : r.findings())
        if (f.rule == id) return true;
    return false;
}

std::string render(const report& r) {
    std::ostringstream os;
    r.render_text(os);
    return os.str();
}

// ---- ALS-R1: unordered overlapping accesses -------------------------------

TEST(Races, R1FiresOnConcurrentUnorderedWrites) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> shared(16);
        int* p = shared.host_data();
        syclite::dataflow_guard g(q);
        // Two concurrent kernels, no pipe between them: their observed
        // writes to the same bytes have no happens-before edge either way.
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.single_task(named("writer_a"), [p] {
                shadow::observe_write(p, 16 * sizeof(int));
            });
        });
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.single_task(named("writer_b"), [p] {
                shadow::observe_write(p, 16 * sizeof(int));
            });
        });
        (void)g.join();
    }
    const report r = run_all(rec);
    ASSERT_TRUE(has_rule(r, "ALS-R1")) << render(r);
    for (const finding& f : r.findings()) {
        if (f.rule != "ALS-R1") continue;
        EXPECT_EQ(f.kernel, "writer_a, writer_b");
        // Labels are region-relative, never raw pointers.
        EXPECT_EQ(f.object.rfind("mem#", 0), 0u) << f.object;
    }
}

TEST(Races, R1SilentWhenAPipeOrdersTheAccesses) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> shared(16);
        int* p = shared.host_data();
        syclite::pipe<int> ch(8, "order");
        syclite::dataflow_guard g(q);
        // Same overlap, but the consumer only touches the bytes after
        // receiving the token the producer sent *after* writing them: the
        // pipe edge orders the pair (the Fig. 3 feedback pattern).
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::write);
            (void)a;
            h.writes_pipe(ch, 1.0, 1.0);
            h.single_task(named("producer"), [p, &ch] {
                shadow::observe_write(p, 16 * sizeof(int));
                ch.write(1);
            });
        });
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(shared, syclite::access_mode::read);
            (void)a;
            h.reads_pipe(ch, 1.0, 1.0);
            h.single_task(named("consumer"), [p, &ch] {
                (void)ch.read();
                shadow::observe_read(p, 16 * sizeof(int));
            });
        });
        (void)g.join();
    }
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R1")) << render(r);
}

TEST(Races, R1SilentAcrossSequentialSubmissions) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        for (int k = 0; k < 2; ++k) {
            q.submit([&](syclite::handler& h) {
                auto a =
                    h.get_access(buf, syclite::access_mode::read_write);
                h.single_task(named(k == 0 ? "first" : "second"), [a] {
                    for (std::size_t i = 0; i < 16; ++i) a[i] = 1;
                });
            });
        }
        q.wait();
    }
    // An in-order queue chains each submission's clock into the next: real
    // element writes through the accessor, same bytes, still ordered.
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R1")) << render(r);
    EXPECT_FALSE(has_rule(r, "ALS-D1")) << render(r);
}

TEST(Races, R1FiresOnHostCopyRacingADeviceWrite) {
    recorder rec;
    std::vector<int> host(16, 0);
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            h.single_task(named("dirtier"), [a] {
                for (std::size_t i = 0; i < 16; ++i) a[i] = 7;
            });
        });
        q.copy_from_device(buf, host.data());  // missing q.wait()
    }
    EXPECT_TRUE(has_rule(run_all(rec), "ALS-R1"));
}

TEST(Races, R1SilentWhenTheHostWaitsBeforeCopying) {
    recorder rec;
    std::vector<int> host(16, 0);
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            h.single_task(named("dirtier"), [a] {
                for (std::size_t i = 0; i < 16; ++i) a[i] = 7;
            });
        });
        q.wait();
        q.copy_from_device(buf, host.data());
    }
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-R1"));
}

TEST(Races, R1SilentAfterADataflowGroupJoin) {
    recorder rec;
    std::vector<int> host(16, 0);
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        {
            syclite::dataflow_guard g(q);
            q.submit([&](syclite::handler& h) {
                auto a = h.get_access(buf, syclite::access_mode::write);
                h.single_task(named("grouped"), [a] {
                    for (std::size_t i = 0; i < 16; ++i) a[i] = 3;
                });
            });
            (void)g.join();
        }
        // end_dataflow() joined the worker thread: no wait() needed.
        q.copy_from_device(buf, host.data());
    }
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R1")) << render(r);
}

// ---- ALS-R2: round-skewed pipe receives -----------------------------------

void run_skew(recorder& rec, std::size_t first_burst, std::size_t second_burst) {
    recorder::scope scope(rec);
    syclite::queue q("xeon_6128");
    syclite::pipe<int> ch(8, "skew");
    syclite::dataflow_guard g(q);
    q.submit([&](syclite::handler& h) {
        h.writes_pipe(ch, 4.0, 2.0);  // 4 items per round, 2 rounds
        h.single_task(named("skew_producer"), [&ch] {
            const int items[8] = {0, 1, 2, 3, 4, 5, 6, 7};
            ch.write_burst(items, 4);
            ch.write_burst(items + 4, 4);
        });
    });
    q.submit([&](syclite::handler& h) {
        h.reads_pipe(ch, 4.0, 2.0);
        h.single_task(named("skew_consumer"), [&ch, first_burst,
                                               second_burst] {
            int sink[8] = {};
            ch.read_burst(sink, first_burst);
            ch.read_burst(sink, second_burst);
        });
    });
    (void)g.join();
}

TEST(Races, R2FiresOnARoundStraddlingReceive) {
    recorder rec;
    // Reads of 3 then 5: the second receive covers items [3, 8), mixing the
    // tail of round 0 with all of round 1.
    run_skew(rec, 3, 5);
    const report r = run_all(rec);
    ASSERT_TRUE(has_rule(r, "ALS-R2")) << render(r);
    for (const finding& f : r.findings()) {
        if (f.rule != "ALS-R2") continue;
        EXPECT_EQ(f.kernel, "skew_consumer");
        EXPECT_EQ(f.object, "skew");
    }
}

TEST(Races, R2SilentWhenBurstsAlignWithRounds) {
    recorder rec;
    run_skew(rec, 4, 4);
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R2")) << render(r);
}

// ---- ALS-D1: declaration drift --------------------------------------------

TEST(Races, D1FiresOnAnAccessOutsideEveryDeclaredRange) {
    static int undeclared[16];
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        syclite::buffer<int> buf(16);
        q.submit([&](syclite::handler& h) {
            auto a = h.get_access(buf, syclite::access_mode::write);
            h.single_task(named("drifter"), [a] {
                a[0] = 1;  // declared: fine
                shadow::observe_write(undeclared, sizeof(undeclared));
            });
        });
        q.wait();
    }
    const report r = run_all(rec);
    ASSERT_TRUE(has_rule(r, "ALS-D1")) << render(r);
    for (const finding& f : r.findings()) {
        if (f.rule == "ALS-D1") EXPECT_EQ(f.kernel, "drifter");
    }
}

TEST(Races, D1SilentWhenUsmIsDeclared) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128");
        int* p = syclite::malloc_shared<int>(16, q);
        ASSERT_NE(p, nullptr);
        q.submit([&](syclite::handler& h) {
            h.uses_usm(p, 16 * sizeof(int), syclite::access_mode::read_write);
            h.single_task(named("usm_user"), [p] {
                shadow::observe_write(p, 16 * sizeof(int));
            });
        });
        q.wait();
        syclite::usm_free(p, q);
    }
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-D1")) << render(r);
}

// ---- Fig. 3: the kmeans center-feedback cycle is proven safe --------------

TEST(Races, KmeansDataflowFeedbackIsRaceFree) {
    apps::register_all_apps();
    const AppInfo* app = Registry::instance().find("kmeans");
    ASSERT_NE(app, nullptr);
    RunConfig cfg;
    cfg.size = 1;
    cfg.passes = 1;
    cfg.variant = Variant::fpga_opt;
    cfg.device = "stratix_10";
    recorder rec;
    {
        recorder::scope scope(rec);
        ResultDatabase db;
        ASSERT_NO_THROW(app->run(cfg, db));
    }
    // mapCenters reads the centers buffer that resetAccFin rewrites each
    // iteration; the pipe edges order every such pair (paper Fig. 3), and
    // the engine must prove it rather than assume it.
    const report r = run_all(rec);
    EXPECT_TRUE(r.empty()) << render(r);
    // The proof rests on observed accesses actually being captured.
    EXPECT_GT(rec.shadow().interval_count(), 0u);
}

// ---- zero-overhead contract -----------------------------------------------

TEST(Races, ShadowHooksAreInertWithoutASession) {
    ASSERT_EQ(recorder::current(), nullptr);
    EXPECT_FALSE(shadow::tracking());
    const std::uint64_t before =
        shadow::detail::g_intervals_flushed.load(std::memory_order_relaxed);
    syclite::queue q("xeon_6128");
    syclite::buffer<int> buf(256);
    q.submit([&](syclite::handler& h) {
        auto a = h.get_access(buf, syclite::access_mode::read_write);
        h.single_task(named("untracked"), [a] {
            for (std::size_t i = 0; i < 256; ++i) a[i] = static_cast<int>(i);
            shadow::observe_write(a.get_pointer(), 256 * sizeof(int));
        });
    });
    q.wait();
    // No session: not one interval may have been logged anywhere, no matter
    // how many accessor elements were dereferenced.
    EXPECT_EQ(shadow::detail::g_intervals_flushed.load(
                  std::memory_order_relaxed),
              before);
}

// ---- ALS-R1 under the out-of-order graph scheduler ------------------------

TEST(Races, R1FiresWhenDeclaredDisjointOooKernelsOverlapInPractice) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128",
                         syclite::queue_property::out_of_order);
        int* p = syclite::malloc_shared<int>(32, q);
        ASSERT_NE(p, nullptr);
        // Each kernel *declares* its own half -- no implied edge, so the
        // graph runs them unordered -- but both *observe* writes to the
        // full range: a lying declaration the happens-before engine must
        // catch precisely because it derives HB from graph edges, not
        // submission order.
        q.submit([&](syclite::handler& h) {
            h.uses_usm(p, 16 * sizeof(int), syclite::access_mode::write);
            h.single_task(named("half_lo"), [p] {
                shadow::observe_write(p, 32 * sizeof(int));
            });
        });
        q.submit([&](syclite::handler& h) {
            h.uses_usm(p + 16, 16 * sizeof(int), syclite::access_mode::write);
            h.single_task(named("half_hi"), [p] {
                shadow::observe_write(p, 32 * sizeof(int));
            });
        });
        q.wait();
        syclite::usm_free(p, q);
    }
    const report r = run_all(rec);
    EXPECT_TRUE(has_rule(r, "ALS-R1")) << render(r);
}

TEST(Races, R1SilentWhenAGraphEdgeOrdersTheOooKernels) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128",
                         syclite::queue_property::out_of_order);
        int* p = syclite::malloc_shared<int>(32, q);
        ASSERT_NE(p, nullptr);
        // Same lying declarations, but an explicit depends_on edge orders
        // the pair: HB derived from the graph covers the overlap.
        syclite::event first = q.submit([&](syclite::handler& h) {
            h.uses_usm(p, 16 * sizeof(int), syclite::access_mode::write);
            h.single_task(named("half_lo"), [p] {
                shadow::observe_write(p, 32 * sizeof(int));
            });
        });
        q.submit([&](syclite::handler& h) {
            h.depends_on(first);
            h.uses_usm(p + 16, 16 * sizeof(int), syclite::access_mode::write);
            h.single_task(named("half_hi"), [p] {
                shadow::observe_write(p, 32 * sizeof(int));
            });
        });
        q.wait();
        syclite::usm_free(p, q);
    }
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R1")) << render(r);
}

TEST(Races, R1SilentForImpliedAccessorEdgesOnAnOooQueue) {
    recorder rec;
    {
        recorder::scope scope(rec);
        syclite::queue q("xeon_6128",
                         syclite::queue_property::out_of_order);
        syclite::buffer<int> buf(16);
        for (int k = 0; k < 2; ++k) {
            q.submit([&](syclite::handler& h) {
                auto a =
                    h.get_access(buf, syclite::access_mode::read_write);
                h.single_task(named(k == 0 ? "first" : "second"), [a] {
                    for (std::size_t i = 0; i < 16; ++i) a[i] = 1;
                });
            });
        }
        q.wait();
    }
    // The declared read_write ranges conflict, so the scheduler inserted a
    // WAW edge -- the same real element writes that are ordered by queue
    // chaining in the in-order variant of this test are ordered by the
    // graph here.
    const report r = run_all(rec);
    EXPECT_FALSE(has_rule(r, "ALS-R1")) << render(r);
    EXPECT_FALSE(has_rule(r, "ALS-D1")) << render(r);
}

// ---- determinism ----------------------------------------------------------

TEST(Races, FindingsAndJsonAreByteStableAcrossRuns) {
    std::string first;
    for (int run = 0; run < 2; ++run) {
        recorder rec;
        run_skew(rec, 3, 5);
        const report r = run_all(rec);
        std::ostringstream os;
        r.render_json(os);
        if (run == 0) {
            first = os.str();
            EXPECT_NE(first.find("ALS-R2"), std::string::npos);
        } else {
            EXPECT_EQ(first, os.str());
        }
    }
}

}  // namespace
}  // namespace altis::analyze
