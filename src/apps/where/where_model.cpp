// Model descriptors for Where. The scan stats come from the scan substrate
// (CUB-shaped for CUDA, oneDPL-shaped for SYCL, Listing 2 for fpga_opt).
#include "apps/where/where.hpp"

#include "scan/scan.hpp"

namespace altis::apps::where {
namespace detail {

namespace {

struct tuning {
    int mark_cus;
    int scatter_cus;
};

// Sec. 5.5: compute-unit replication retuned 20x->25x (mark) and 2x->4x
// (scatter) when moving from Stratix 10 to Agilex.
tuning fpga_tuning(const perf::device_spec& dev) {
    return dev.name == "stratix_10" ? tuning{20, 2} : tuning{25, 4};
}

}  // namespace

perf::kernel_stats stats_mark(const params& p, const perf::device_spec& dev,
                              Variant v) {
    perf::kernel_stats k;
    k.name = "where_mark";
    k.global_items = static_cast<double>(p.n);
    k.wg_size = dev.is_fpga() ? 128 : 256;
    k.int_ops = 4.0;
    k.bytes_read = 8.0;   // one record
    k.bytes_written = 4.0;  // one flag
    k.static_int_ops = 8;
    k.static_branches = 1;
    k.accessor_args = 2;
    k.control_complexity = 1;
    if (v == Variant::fpga_opt) {
        const tuning t = fpga_tuning(dev);
        k.replication = t.mark_cus;
        k.args_restrict = true;
    }
    return k;
}

perf::kernel_stats stats_scatter(const params& p, const perf::device_spec& dev,
                                 Variant v) {
    perf::kernel_stats k;
    k.name = "where_scatter";
    k.global_items = static_cast<double>(p.n);
    k.wg_size = dev.is_fpga() ? 128 : 256;
    k.int_ops = 4.0;
    k.bytes_read = 8.0 + 4.0 + 4.0;  // record + flag + prefix
    k.bytes_written = 8.0 * 0.25;    // ~25% selectivity
    k.divergence = 0.25;             // predicated write
    k.static_int_ops = 10;
    k.static_branches = 2;
    k.accessor_args = 4;
    k.control_complexity = 2;
    if (v == Variant::fpga_opt) {
        const tuning t = fpga_tuning(dev);
        k.replication = t.scatter_cus;
        k.args_restrict = true;
    }
    return k;
}

perf::kernel_stats stats_scan(const params& p, const perf::device_spec& dev,
                              Variant v) {
    (void)dev;
    switch (v) {
        case Variant::cuda:
            return scan::stats_scan_cuda(p.n);
        case Variant::sycl_base:
        case Variant::sycl_opt:
        case Variant::fpga_base:
            // Sec. 3.3/5.3: oneDPL's GPU-shaped scan everywhere until the
            // custom FPGA scan replaces it.
            return scan::stats_scan_onedpl(p.n);
        case Variant::fpga_opt:
            return scan::stats_scan_fpga_custom(p.n);
    }
    throw std::logic_error("where: unknown variant");
}

double onedpl_scan_overhead_ns(const params& p, const perf::device_spec& dev) {
    // oneDPL's scan allocates temporary device buffers and synchronizes
    // internally on every call -- fixed cost plus a per-element component.
    // Together with the extra data passes this is why the optimized Where
    // stays at ~0.2-0.5x of CUDA in Fig. 2. On the CPU backend the scan runs
    // as a scalar multi-pass TBB pipeline: roughly 8 ns per element.
    const double per_elem = dev.kind == perf::device_kind::cpu ? 8.0 : 0.15;
    return 0.4e6 + static_cast<double>(p.n) * per_elem;
}

}  // namespace detail

timed_region region(Variant v, const perf::device_spec& dev, int size) {
    const params p = params::preset(size);
    timed_region r;
    r.name = std::string("where/") + to_string(v) + "/size" + std::to_string(size);
    // Where's timed region covers the query kernels only (data staging is
    // excluded), matching the functional run().
    r.include_setup = false;
    r.syncs = 1.0;
    if (v == Variant::sycl_base || v == Variant::sycl_opt ||
        v == Variant::fpga_base)
        r.extra_non_kernel_ns = detail::onedpl_scan_overhead_ns(p, dev);
    r.kernels.push_back({detail::stats_mark(p, dev, v), 1.0});
    r.kernels.push_back({detail::stats_scan(p, dev, v), 1.0});
    r.kernels.push_back({detail::stats_scatter(p, dev, v), 1.0});
    return r;
}

std::vector<perf::kernel_stats> fpga_design(const perf::device_spec& dev,
                                            int size) {
    const params p = params::preset(size);
    return {detail::stats_mark(p, dev, Variant::fpga_opt),
            detail::stats_scan(p, dev, Variant::fpga_opt),
            detail::stats_scatter(p, dev, Variant::fpga_opt)};
}

}  // namespace altis::apps::where
