// One-stop CLI harness for binaries whose only options are the trace ones
// (the bench fig*/table* regenerators): owns the OptionParser, the session
// and its activation, so a bench main() is three lines of wiring:
//
//   altis::trace::cli_harness h("fig3_kmeans_pipes");
//   if (int rc = h.parse(argc, argv); rc >= 0) return rc;
//   ... existing body (simulate_region / queues pick the session up) ...
//   return h.finish();
#pragma once

#include <optional>
#include <string>

#include "analyze/options.hpp"
#include "analyze/recorder.hpp"
#include "core/option_parser.hpp"
#include "fault/inject.hpp"
#include "fault/options.hpp"
#include "metrics/options.hpp"
#include "metrics/session.hpp"
#include "resilience/options.hpp"
#include "resilience/supervisor.hpp"
#include "trace/options.hpp"
#include "trace/session.hpp"

namespace altis::trace {

class cli_harness {
public:
    explicit cli_harness(std::string name);

    /// Parses argv (handling --help and unknown options). Returns a process
    /// exit code when main should return immediately, -1 to continue. When
    /// tracing is requested, the session becomes current here.
    [[nodiscard]] int parse(int argc, char** argv);

    /// Runs the sanitizer (when --sanitize was given) and exports
    /// trace/profile artifacts if requested. Returns the process exit code
    /// (0; 1 when --sanitize=error found problems; 2 when an artifact could
    /// not be written).
    [[nodiscard]] int finish();

    [[nodiscard]] OptionParser& parser() { return opts_; }
    [[nodiscard]] session& trace_session() { return session_; }

    /// Fault/resilience options parsed from the shared flags (--inject,
    /// --fail-fast, --retries, --retry-backoff-ms). When --inject is given
    /// (or $ALTIS_FAULT is set), parse() compiles the plan and makes it the
    /// process-wide active plan for the binary's lifetime; a malformed spec
    /// is a usage error (exit code 2).
    [[nodiscard]] const fault::options& fault_options() const { return fopts_; }
    [[nodiscard]] const fault::retry_policy& retry_policy() const {
        return fopts_.policy;
    }
    [[nodiscard]] bool fail_fast() const { return fopts_.fail_fast; }

    /// Sanitize options parsed from --sanitize/--sanitize-json. When
    /// enabled, parse() installs a process-wide analyze::recorder for the
    /// binary's lifetime and finish() runs the passes over the captured
    /// command graph.
    [[nodiscard]] const analyze::options& sanitize_options() const {
        return aopts_;
    }

    /// Wall-clock metrics options parsed from --metrics/--metrics-prom/
    /// --metrics-json ($ALTIS_METRICS forces collection on). When enabled,
    /// parse() starts a metrics::session; finish() stops it before the trace
    /// export so the sampled series merge into the Perfetto file as counter
    /// tracks, then writes the requested exports.
    [[nodiscard]] const metrics::options& metrics_options() const {
        return mopts_;
    }
    [[nodiscard]] metrics::session* metrics_session() {
        return msession_ ? &*msession_ : nullptr;
    }

    /// Resilience options parsed from --deadline-ms/--journal/--resume/
    /// --breaker-* ($ALTIS_DEADLINE_MS). When any supervisor feature is
    /// requested, parse() constructs the supervisor (validating a --resume
    /// journal against the harness name; a mismatch is exit code 2) and
    /// installs SIGINT/SIGTERM cooperative cancellation.
    [[nodiscard]] const resilience::options& resilience_options() const {
        return ropts_;
    }
    [[nodiscard]] resilience::supervisor* supervisor() {
        return supervisor_ ? &*supervisor_ : nullptr;
    }

private:
    OptionParser opts_;
    trace::options topts_;
    fault::options fopts_;
    analyze::options aopts_;
    metrics::options mopts_;
    resilience::options ropts_;
    std::optional<resilience::supervisor> supervisor_;
    std::optional<fault::plan> plan_;
    std::optional<fault::scope> fault_scope_;
    std::optional<analyze::recorder> recorder_;
    std::optional<analyze::recorder::scope> sanitize_scope_;
    std::optional<metrics::session> msession_;
    session session_;
    std::optional<session::scope> scope_;
};

}  // namespace altis::trace
