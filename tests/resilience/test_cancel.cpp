#include "resilience/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fault/inject.hpp"
#include "fault/retry.hpp"
#include "fault/spec.hpp"
#include "sycl/pipe.hpp"
#include "sycl/thread_pool.hpp"

namespace altis::resilience {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Every test shares the process-wide token; start and finish clean so a
/// latched cancellation can never leak across tests.
class Cancel : public ::testing::Test {
protected:
    void SetUp() override { current().reset(); }
    void TearDown() override { current().reset(); }
};

TEST_F(Cancel, FastPathIsQuietWhenDisabled) {
    EXPECT_FALSE(cancellation_requested());
    EXPECT_NO_THROW(checkpoint());
}

TEST_F(Cancel, ManualCancelRaisesWithReason) {
    current().cancel(cancel_reason::manual);
    EXPECT_TRUE(cancellation_requested());
    try {
        checkpoint();
        FAIL() << "checkpoint did not raise";
    } catch (const cancelled_error& e) {
        EXPECT_EQ(e.reason(), cancel_reason::manual);
        EXPECT_STREQ(e.what(), "cancelled");
    }
}

TEST_F(Cancel, DeadlineScopeLatchesExpiryAndClearsOnExit) {
    {
        deadline_scope scope(20.0);
        std::this_thread::sleep_for(milliseconds(40));
        EXPECT_TRUE(cancellation_requested());
        try {
            checkpoint();
            FAIL() << "expired deadline did not raise";
        } catch (const cancelled_error& e) {
            EXPECT_EQ(e.reason(), cancel_reason::deadline);
            EXPECT_NE(std::string(e.what()).find("deadline of"),
                      std::string::npos);
        }
    }
    // Disarm cleared the deadline latch: the next configuration starts on
    // the quiet fast path.
    EXPECT_FALSE(cancellation_requested());
    EXPECT_NO_THROW(checkpoint());
}

TEST_F(Cancel, DisarmPreservesManualAndInterruptCancellation) {
    {
        deadline_scope scope(1000.0);
        current().cancel(cancel_reason::manual);
    }
    // A manual cancel means the sweep is being torn down; leaving the
    // deadline scope must not resurrect it.
    EXPECT_TRUE(cancellation_requested());
    EXPECT_THROW(checkpoint(), cancelled_error);
}

TEST_F(Cancel, ZeroDeadlineScopeIsInert) {
    deadline_scope scope(0.0);
    std::this_thread::sleep_for(milliseconds(5));
    EXPECT_FALSE(cancellation_requested());
}

TEST_F(Cancel, BlockedPipeReadWakesOnDeadlineWithinBudget) {
    // The hang scenario from the paper's FPGA campaigns: a consumer blocked
    // on a pipe whose producer never runs, with a watchdog far longer than
    // anyone wants to wait. The armed deadline must cut it loose in
    // milliseconds, not ride out the 60 s watchdog.
    syclite::pipe<int> p(4, "hung_consumer", milliseconds(60000));
    const auto t0 = steady_clock::now();
    deadline_scope scope(100.0);
    try {
        (void)p.read();
        FAIL() << "read returned from an empty pipe";
    } catch (const cancelled_error& e) {
        EXPECT_EQ(e.reason(), cancel_reason::deadline);
    }
    const auto elapsed = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 5000) << "cancellation latency out of budget";
}

TEST_F(Cancel, InjectedPipeStallIsCancellable) {
    fault::plan plan = fault::plan::parse("pipe:stall*@1");
    fault::scope fs(plan);
    syclite::pipe<int> p(4, "stall_target", milliseconds(60000));
    const auto t0 = steady_clock::now();
    deadline_scope scope(100.0);
    // The injected stall would normally block for the full watchdog and
    // collapse into pipe_deadlock; under a deadline it must raise
    // cancelled_error long before that.
    EXPECT_THROW(p.write(1), cancelled_error);
    const auto elapsed = std::chrono::duration_cast<milliseconds>(
        steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 5000);
}

TEST_F(Cancel, RunGuardedClassifiesDeadlineAsNonRetryable) {
    deadline_scope scope(20.0);
    int calls = 0;
    fault::retry_policy policy;
    policy.max_attempts = 5;
    const fault::outcome oc = fault::run_guarded(
        [&] {
            ++calls;
            std::this_thread::sleep_for(milliseconds(40));
            checkpoint();
        },
        policy);
    EXPECT_EQ(oc.st, fault::outcome::status::deadline);
    EXPECT_EQ(std::string(oc.label()), "deadline");
    EXPECT_EQ(calls, 1) << "deadline outcomes must not be retried";
}

TEST_F(Cancel, RunGuardedClassifiesManualCancel) {
    current().cancel(cancel_reason::manual);
    const fault::outcome oc =
        fault::run_guarded([&] { checkpoint(); }, fault::retry_policy{});
    EXPECT_EQ(oc.st, fault::outcome::status::cancelled);
    EXPECT_EQ(std::string(oc.label()), "cancelled");
}

TEST_F(Cancel, ThreadPoolParallelForRaisesOnSubmitterAfterDrain) {
    syclite::thread_pool pool(2);
    std::atomic<int> executed{0};
    current().cancel(cancel_reason::manual);
    EXPECT_THROW(
        pool.parallel_for(100000, [&](std::size_t) { ++executed; }),
        cancelled_error);
    // Workers bail between chunks instead of throwing; the cancelled job
    // must not have run the whole range.
    EXPECT_LT(executed.load(), 100000);
}

TEST_F(Cancel, SerialParallelForObservesMaskedCheckpoints) {
    syclite::thread_pool pool(0);  // no workers: serial fallback path
    std::atomic<int> executed{0};
    EXPECT_THROW(pool.parallel_for(100000,
                                   [&](std::size_t i) {
                                       ++executed;
                                       if (i == 2000)
                                           current().cancel(
                                               cancel_reason::manual);
                                   }),
                 cancelled_error);
    EXPECT_LT(executed.load(), 100000);
    EXPECT_GE(executed.load(), 2000);
}

TEST_F(Cancel, StatusLabelRoundTrip) {
    EXPECT_EQ(fault::status_from_label("ok"), fault::outcome::status::ok);
    EXPECT_EQ(fault::status_from_label("retried"), fault::outcome::status::ok);
    EXPECT_EQ(fault::status_from_label("skipped"),
              fault::outcome::status::skipped);
    EXPECT_EQ(fault::status_from_label("deadline"),
              fault::outcome::status::deadline);
    EXPECT_EQ(fault::status_from_label("cancelled"),
              fault::outcome::status::cancelled);
    EXPECT_EQ(fault::status_from_label("quarantined"),
              fault::outcome::status::quarantined);
    EXPECT_EQ(fault::status_from_label("nonsense"),
              fault::outcome::status::failed);
}

}  // namespace
}  // namespace altis::resilience
