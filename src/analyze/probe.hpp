// Runtime probe for accessor-lifetime checking (rule ALS-H3: the
// particlefilter bug class PR 2 fixed -- an accessor captured by reference
// outliving its command group). This header is included by the syclite
// buffer, so it must stay dependency-free and the hot path must be cheap:
// an accessor created outside a sanitize session carries a null token and
// pays a single predictable branch per element access.
#pragma once

#include <atomic>
#include <cstdint>

namespace altis::analyze::probe {

/// Lifetime tag of one command group. Tokens live in a process-lifetime
/// arena (stable addresses), so a stale accessor's token pointer is always
/// safe to read even after the recorder that created it is gone.
struct cg_token {
    std::atomic<bool> retired{false};
    std::uint64_t id = 0;
};

/// Allocates a token for command group `id` from the arena.
[[nodiscard]] cg_token* new_token(std::uint64_t id);

/// Slow path: reports the stale use to the current recorder (deduplicated
/// per (command group, base pointer)). No-op when no recorder is active.
void on_stale_use(const cg_token* token, const void* base);

/// Hot-path check, called from accessor::operator[] when a token is bound:
/// one relaxed atomic load; the report only happens on an actual violation.
inline void accessor_use(const cg_token* token, const void* base) {
    if (token->retired.load(std::memory_order_relaxed)) on_stale_use(token, base);
}

}  // namespace altis::analyze::probe
