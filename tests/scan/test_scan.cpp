#include "scan/scan.hpp"

#include <gtest/gtest.h>

#include "perf/device.hpp"
#include "perf/model.hpp"

#include <numeric>
#include <random>
#include <vector>

namespace altis::scan {
namespace {

std::vector<int> random_input(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_int_distribution<int> dist(-10, 10);
    std::vector<int> v(n);
    for (auto& x : v) x = dist(gen);
    return v;
}

TEST(ScanSerial, ExclusiveBasics) {
    const std::vector<int> in{3, 1, 4, 1, 5};
    std::vector<int> out(in.size());
    exclusive_scan_serial(in, out);
    EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(ScanSerial, InclusiveBasics) {
    const std::vector<int> in{3, 1, 4, 1, 5};
    std::vector<int> out(in.size());
    inclusive_scan_serial(in, out);
    EXPECT_EQ(out, (std::vector<int>{3, 4, 8, 9, 14}));
}

TEST(ScanSerial, InPlaceExclusive) {
    std::vector<int> v{1, 2, 3, 4};
    exclusive_scan_serial(v, v);
    EXPECT_EQ(v, (std::vector<int>{0, 1, 3, 6}));
}

TEST(ScanSerial, EmptyInput) {
    std::vector<int> in, out;
    EXPECT_NO_THROW(exclusive_scan_serial(in, out));
}

TEST(ScanSerial, OutputTooSmallThrows) {
    std::vector<int> in{1, 2}, out(1);
    EXPECT_THROW(exclusive_scan_serial(in, out), std::invalid_argument);
    EXPECT_THROW(inclusive_scan_serial(in, out), std::invalid_argument);
}

TEST(ScanBlocked, InPlaceRejected) {
    std::vector<int> v{1, 2, 3};
    syclite::thread_pool pool(2);
    EXPECT_THROW(exclusive_scan_blocked(v, v, pool), std::invalid_argument);
}

class ScanBlockedSizes : public ::testing::TestWithParam<std::size_t> {};

// Property: the blocked three-phase scan matches the serial scan for any
// size, including non-multiples of the block and sizes below one block.
TEST_P(ScanBlockedSizes, MatchesSerialReference) {
    const std::size_t n = GetParam();
    const auto in = random_input(n, static_cast<unsigned>(n) + 1);
    std::vector<int> expected(n), actual(n);
    exclusive_scan_serial(in, expected);
    syclite::thread_pool pool(3);
    exclusive_scan_blocked(in, actual, pool, 128);
    EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanBlockedSizes,
                         ::testing::Values(0, 1, 2, 127, 128, 129, 1000, 4096,
                                           100000));

TEST(ScanFpgaCustom, MatchesListing2Semantics) {
    // Listing 2: prefix[0]=0; prefix[i] = prefix[i-1] + results[i].
    const std::vector<int> results{9, 2, 3, 4};
    std::vector<int> prefix(results.size());
    exclusive_scan_fpga_custom(results, prefix);
    EXPECT_EQ(prefix, (std::vector<int>{0, 2, 5, 9}));  // results[0] skipped
}

TEST(ScanFpgaCustom, EquivalentToExclusiveScanOfShiftedInput) {
    const auto data = random_input(1000, 7);
    // Feeding results[i] = flag[i-1] makes Listing 2 an exclusive scan.
    std::vector<int> shifted(data.size() + 1, 0);
    std::copy(data.begin(), data.end(), shifted.begin() + 1);
    std::vector<int> prefix(shifted.size());
    exclusive_scan_fpga_custom(shifted, prefix);
    std::vector<int> expected(data.size());
    exclusive_scan_serial(data, expected);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(prefix[i], expected[i]) << i;
}

// ---- model descriptors ----

TEST(ScanStats, OneDplMovesMoreBytesThanCub) {
    const auto cub = stats_scan_cuda(1 << 20);
    const auto dpl = stats_scan_onedpl(1 << 20);
    EXPECT_GT(dpl.bytes_read + dpl.bytes_written,
              cub.bytes_read + cub.bytes_written);
}

TEST(ScanStats, GpuSlowdownNearFiftyPercent) {
    // Sec. 3.3: oneDPL's scan is ~50% slower than CUDA's on the RTX 2080.
    const auto& rtx = perf::device_by_name("rtx_2080");
    const double cub = perf::kernel_time_ns(stats_scan_cuda(1 << 24), rtx);
    const double dpl = perf::kernel_time_ns(stats_scan_onedpl(1 << 24), rtx);
    EXPECT_NEAR(dpl / cub, 1.5, 0.25);
}

TEST(ScanStats, CustomFpgaScanBeatsGpuShapedScanOnFpga) {
    // Sec. 5.3: up to 100x on the Stratix 10.
    const auto& s10 = perf::device_by_name("stratix_10");
    const std::size_t n = 1 << 22;
    const double onedpl = perf::kernel_time_ns(stats_scan_onedpl(n), s10);
    const double custom = perf::kernel_time_ns(stats_scan_fpga_custom(n), s10);
    EXPECT_GT(onedpl / custom, 20.0);
    EXPECT_LT(onedpl / custom, 200.0);
}

TEST(ScanStats, CustomScanStructureMatchesListing2) {
    const auto k = stats_scan_fpga_custom(1024);
    EXPECT_EQ(k.form, perf::kernel_form::single_task);
    EXPECT_TRUE(k.args_restrict);
    ASSERT_EQ(k.loops.size(), 1u);
    EXPECT_EQ(k.loops[0].unroll, 2);
    EXPECT_EQ(k.loops[0].initiation_interval, 1);
}

}  // namespace
}  // namespace altis::scan
