// Shared CLI/env wiring for the sweep supervisor; every harness binary
// (altis_run, the fig* regenerators) registers the same options:
//
//   --deadline-ms D        per-configuration wall-clock budget; a config
//                          that overruns is cancelled cooperatively and
//                          recorded as `deadline` (default:
//                          $ALTIS_DEADLINE_MS, else 0 = no deadline)
//   --journal <path>       write a crash-safe JSONL checkpoint per
//                          completed configuration
//   --resume <path>        replay completed configurations from a journal
//                          and continue (appending to the same file)
//   --breaker-threshold N  consecutive hard failures before a config key
//                          is quarantined (0 disables; default 3)
//   --breaker-cooldown N   quarantined encounters before a half-open
//                          probe (default 2)
#pragma once

#include <string>

#include "core/option_parser.hpp"
#include "resilience/breaker.hpp"

namespace altis::resilience {

void add_resilience_options(OptionParser& opts);

struct options {
    double deadline_ms = 0.0;  ///< 0: no deadline
    std::string journal_path;  ///< empty: no journal
    std::string resume_path;   ///< empty: fresh run
    breaker_policy breaker;

    /// True when any supervisor feature beyond the default breaker was
    /// requested (deadline, journal or resume).
    [[nodiscard]] bool enabled() const {
        return deadline_ms > 0.0 || !journal_path.empty() ||
               !resume_path.empty();
    }

    /// Reads the registered options (and $ALTIS_DEADLINE_MS), validating
    /// ranges: negative, non-finite or absurd values throw OptionError so
    /// the harness exits 2 with one clear line instead of misbehaving
    /// later.
    [[nodiscard]] static options from(const OptionParser& opts);
};

}  // namespace altis::resilience
