file(REMOVE_RECURSE
  "libaltis_syclite.a"
)
