#include "apps/kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "apps/common/verify.hpp"
#include "rng/philox.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::kmeans {

params params::preset(int size) {
    params p;
    switch (size) {
        case 1: p = {4096, 16, 8, 150, 0xC1D2ULL}; break;
        case 2: p = {65536, 16, 8, 300, 0xC1D2ULL}; break;
        case 3: p = {262144, 16, 8, 500, 0xC1D2ULL}; break;
        default: throw std::invalid_argument("kmeans: size must be 1..3");
    }
    return p;
}

dataset make_dataset(const params& p) {
    dataset data;
    data.points.resize(p.n * p.d);
    rng::philox4x32 gen(p.seed);
    for (std::size_t i = 0; i < p.n; ++i) {
        const std::size_t blob = i % p.k;
        for (std::size_t j = 0; j < p.d; ++j) {
            const float center = static_cast<float>(blob) * 4.0f +
                                 static_cast<float>(j % 3);
            data.points[i * p.d + j] = center + (gen.next_float() - 0.5f);
        }
    }
    data.initial_centers.assign(data.points.begin(),
                                data.points.begin() +
                                    static_cast<std::ptrdiff_t>(p.k * p.d));
    return data;
}

namespace {

/// Index of the nearest center (first minimum wins) -- shared verbatim by
/// golden and all kernels so tie-breaking is identical.
int nearest_center(const float* point, const float* centers, std::size_t k,
                   std::size_t d) {
    int best = 0;
    float best_dist = std::numeric_limits<float>::max();
    for (std::size_t c = 0; c < k; ++c) {
        float dist = 0.0f;
        for (std::size_t j = 0; j < d; ++j) {
            const float diff = point[j] - centers[c * d + j];
            dist += diff * diff;
        }
        if (dist < best_dist) {
            best_dist = dist;
            best = static_cast<int>(c);
        }
    }
    return best;
}

/// Sequential accumulation pass: sums/counts in point order, then the
/// division. Shared by golden and the Single-Task path.
void accumulate_and_finalize(const params& p, const float* points,
                             const int* assignment, float* centers) {
    std::vector<float> sums(p.k * p.d, 0.0f);
    std::vector<int> counts(p.k, 0);
    for (std::size_t i = 0; i < p.n; ++i) {
        const int c = assignment[i];
        for (std::size_t j = 0; j < p.d; ++j)
            sums[static_cast<std::size_t>(c) * p.d + j] += points[i * p.d + j];
        ++counts[static_cast<std::size_t>(c)];
    }
    for (std::size_t c = 0; c < p.k; ++c) {
        if (counts[c] == 0) continue;  // keep the old center
        for (std::size_t j = 0; j < p.d; ++j)
            centers[c * p.d + j] =
                sums[c * p.d + j] / static_cast<float>(counts[c]);
    }
}

}  // namespace

clustering golden(const params& p, const dataset& data) {
    clustering out;
    out.centers = data.initial_centers;
    out.assignment.assign(p.n, 0);
    for (int iter = 0; iter < p.iterations; ++iter) {
        for (std::size_t i = 0; i < p.n; ++i)
            out.assignment[i] = nearest_center(&data.points[i * p.d],
                                               out.centers.data(), p.k, p.d);
        accumulate_and_finalize(p, data.points.data(), out.assignment.data(),
                                out.centers.data());
    }
    return out;
}

namespace detail {

perf::kernel_stats stats_map_nd(const params& p, const perf::device_spec& dev);
perf::kernel_stats stats_reset_nd(const params& p);
perf::kernel_stats stats_accumulate_nd(const params& p);
perf::kernel_stats stats_finalize_nd(const params& p);
perf::kernel_stats stats_map_st(const params& p, const perf::device_spec& dev);
perf::kernel_stats stats_resetaccfin_st(const params& p,
                                        const perf::device_spec& dev);

}  // namespace detail

namespace {

/// ND-Range path (CUDA / SYCL / FPGA baseline): four kernels per iteration
/// communicating through global memory (Fig. 3a). The accumulation uses one
/// work-group per chunk with deterministic in-chunk order, then a
/// group-ordered finalize, so results are scheduling-independent.
void run_nd_iteration(sl::queue& q, const params& p, sl::buffer<float>& points,
                      sl::buffer<float>& centers, sl::buffer<int>& assignment,
                      sl::buffer<float>& partial_sums,
                      sl::buffer<int>& partial_counts, std::size_t num_chunks,
                      std::size_t chunk, const perf::device_spec& dev) {
    const std::size_t wg = dev.is_fpga() ? 64 : 256;

    q.submit([&](sl::handler& h) {  // mapCenters
        auto pts = h.get_access(points, sl::access_mode::read);
        auto ctr = h.get_access(centers, sl::access_mode::read);
        auto asg = h.get_access(assignment, sl::access_mode::discard_write);
        const params cp = p;
        h.parallel_for(sl::nd_range<1>(sl::range<1>(p.n), sl::range<1>(wg)),
                       detail::stats_map_nd(p, dev), [=](sl::nd_item<1> it) {
                           const std::size_t i = it.get_global_id(0);
                           asg[i] = nearest_center(&pts[i * cp.d],
                                                   &ctr[0], cp.k, cp.d);
                       });
    });

    q.submit([&](sl::handler& h) {  // reset partials
        auto sums = h.get_access(partial_sums, sl::access_mode::discard_write);
        auto cnts = h.get_access(partial_counts, sl::access_mode::discard_write);
        const std::size_t kd = p.k * p.d;
        h.parallel_for(
            sl::nd_range<1>(sl::range<1>(num_chunks * kd), sl::range<1>(std::min<std::size_t>(kd, 64))),
            detail::stats_reset_nd(p), [=](sl::nd_item<1> it) {
                const std::size_t i = it.get_global_id(0);
                sums[i] = 0.0f;
                if (i % kd < p.k) cnts[(i / kd) * p.k + i % kd] = 0;
            });
    });

    q.submit([&](sl::handler& h) {  // accumulate per chunk
        auto pts = h.get_access(points, sl::access_mode::read);
        auto asg = h.get_access(assignment, sl::access_mode::read);
        auto sums = h.get_access(partial_sums, sl::access_mode::read_write);
        auto cnts = h.get_access(partial_counts, sl::access_mode::read_write);
        const params cp = p;
        const std::size_t chunk_sz = chunk;
        h.parallel_for_work_group(
            sl::range<1>(num_chunks), sl::range<1>(1),
            detail::stats_accumulate_nd(p), [=](sl::group<1> g) {
                g.parallel_for_work_item([&](sl::h_item<1>) {
                    const std::size_t c0 = g.get_group_id(0) * chunk_sz;
                    const std::size_t c1 = std::min(c0 + chunk_sz, cp.n);
                    const std::size_t base_s = g.get_group_id(0) * cp.k * cp.d;
                    const std::size_t base_c = g.get_group_id(0) * cp.k;
                    for (std::size_t i = c0; i < c1; ++i) {
                        const auto c = static_cast<std::size_t>(asg[i]);
                        for (std::size_t j = 0; j < cp.d; ++j)
                            sums[base_s + c * cp.d + j] += pts[i * cp.d + j];
                        cnts[base_c + c] += 1;
                    }
                });
            });
    });

    q.submit([&](sl::handler& h) {  // finalize
        auto sums = h.get_access(partial_sums, sl::access_mode::read);
        auto cnts = h.get_access(partial_counts, sl::access_mode::read);
        auto ctr = h.get_access(centers, sl::access_mode::read_write);
        const params cp = p;
        const std::size_t chunks = num_chunks;
        h.parallel_for(sl::nd_range<1>(sl::range<1>(cp.k), sl::range<1>(1)),
                       detail::stats_finalize_nd(p), [=](sl::nd_item<1> it) {
                           const std::size_t c = it.get_global_id(0);
                           int count = 0;
                           for (std::size_t g = 0; g < chunks; ++g)
                               count += cnts[g * cp.k + c];
                           if (count == 0) return;
                           for (std::size_t j = 0; j < cp.d; ++j) {
                               float sum = 0.0f;
                               for (std::size_t g = 0; g < chunks; ++g)
                                   sum += sums[(g * cp.k + c) * cp.d + j];
                               ctr[c * cp.d + j] = sum / static_cast<float>(count);
                           }
                       });
    });
}

/// Optimized FPGA dataflow (Fig. 3b): one launch of two Single-Task kernels;
/// mapCenters is the only kernel touching global memory; mappings stream
/// through `map_pipe`, new centers feed back through `center_pipe`.
void run_dataflow(sl::queue& q, const params& p, sl::buffer<float>& points,
                  sl::buffer<float>& centers, sl::buffer<int>& assignment,
                  const perf::device_spec& dev) {
    struct mapping {
        int center;
        float coords[32];  // max feature count across presets
    };
    if (p.d > 32)
        throw std::invalid_argument("kmeans: dataflow path supports d <= 32");

    /// Mappings move in bursts of this many to amortize the pipe's counter
    /// publication (docs/PERFORMANCE.md); purely a host-side wall-clock
    /// optimization -- the declared per-round volumes and the simulated
    /// timeline are unchanged.
    constexpr std::size_t kBurst = 64;

    sl::pipe<mapping> map_pipe(256, "kmeans_map");
    sl::pipe<float> center_pipe(1024, "kmeans_center");

    // RAII guard: if either submission throws (an injected launch fault, an
    // allocation failure inside a handler), the dtor aborts the half-built
    // group so the queue is reusable instead of wedged in dataflow mode.
    sl::dataflow_guard group(q);
    q.submit([&](sl::handler& h) {  // mapCenters
        auto pts = h.get_access(points, sl::access_mode::read);
        auto ctr = h.get_access(centers, sl::access_mode::read);
        auto asg = h.get_access(assignment, sl::access_mode::discard_write);
        const params cp = p;
        auto* mp = &map_pipe;
        auto* fb = &center_pipe;
        // Declared steady-state volumes for the sanitizer's pipe lint: each
        // iteration streams n mappings out and k*d center floats back. The
        // feedback cycle is feasible because center_pipe holds a full round.
        h.writes_pipe(map_pipe, static_cast<double>(p.n), p.iterations);
        h.reads_pipe(center_pipe, static_cast<double>(p.k * p.d), p.iterations);
        h.single_task(detail::stats_map_st(p, dev), [=]() {
            std::vector<float> cur(cp.k * cp.d);
            for (std::size_t x = 0; x < cp.k * cp.d; ++x) cur[x] = ctr[x];
            std::vector<mapping> batch(kBurst);
            for (int iter = 0; iter < cp.iterations; ++iter) {
                std::size_t filled = 0;
                for (std::size_t i = 0; i < cp.n; ++i) {
                    mapping& m = batch[filled];
                    m.center =
                        nearest_center(&pts[i * cp.d], cur.data(), cp.k, cp.d);
                    for (std::size_t j = 0; j < cp.d; ++j)
                        m.coords[j] = pts[i * cp.d + j];
                    if (iter == cp.iterations - 1) asg[i] = m.center;
                    if (++filled == kBurst) {
                        mp->write_burst(batch.data(), filled);
                        filled = 0;
                    }
                }
                if (filled > 0) mp->write_burst(batch.data(), filled);
                // Receive the finalized centers for the next pass.
                fb->read_burst(cur.data(), cp.k * cp.d);
            }
        });
    });
    q.submit([&](sl::handler& h) {  // resetAccFin
        // Separate read and write accessors instead of one read_write: the
        // kernel only *reads* centers once up front and only *writes* them
        // once at the very end. Declaring that precisely lets the race
        // engine prove the feedback cycle safe -- the final write is
        // happens-after mapCenters' initial read through the map_pipe
        // edges, whereas a read_write accessor would make every access
        // look like a potential store.
        auto ctr_in = h.get_access(centers, sl::access_mode::read);
        auto ctr_out = h.get_access(centers, sl::access_mode::write);
        const params cp = p;
        auto* mp = &map_pipe;
        auto* fb = &center_pipe;
        h.reads_pipe(map_pipe, static_cast<double>(p.n), p.iterations);
        h.writes_pipe(center_pipe, static_cast<double>(p.k * p.d), p.iterations);
        h.single_task(detail::stats_resetaccfin_st(p, dev), [=]() {
            std::vector<float> cur(cp.k * cp.d);
            for (std::size_t x = 0; x < cp.k * cp.d; ++x) cur[x] = ctr_in[x];
            std::vector<float> sums(cp.k * cp.d);
            std::vector<int> counts(cp.k);
            std::vector<mapping> batch(kBurst);
            for (int iter = 0; iter < cp.iterations; ++iter) {
                std::fill(sums.begin(), sums.end(), 0.0f);   // reset
                std::fill(counts.begin(), counts.end(), 0);
                for (std::size_t i = 0; i < cp.n;) {         // accumulate
                    const std::size_t take = std::min(kBurst, cp.n - i);
                    mp->read_burst(batch.data(), take);
                    for (std::size_t b = 0; b < take; ++b) {
                        const mapping& m = batch[b];
                        const auto c = static_cast<std::size_t>(m.center);
                        for (std::size_t j = 0; j < cp.d; ++j)
                            sums[c * cp.d + j] += m.coords[j];
                        ++counts[c];
                    }
                    i += take;
                }
                for (std::size_t c = 0; c < cp.k; ++c) {     // finalize
                    if (counts[c] == 0) continue;
                    for (std::size_t j = 0; j < cp.d; ++j)
                        cur[c * cp.d + j] =
                            sums[c * cp.d + j] / static_cast<float>(counts[c]);
                }
                fb->write_burst(cur.data(), cp.k * cp.d);
            }
            for (std::size_t x = 0; x < cp.k * cp.d; ++x) ctr_out[x] = cur[x];
        });
    });
    group.join();
}

}  // namespace

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);
    const dataset data = make_dataset(p);
    const clustering expected = golden(p, data);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    sl::buffer<float> points(p.n * p.d);
    q.copy_to_device(points, data.points.data());
    sl::buffer<float> centers(p.k * p.d);
    q.copy_to_device(centers, data.initial_centers.data());
    sl::buffer<int> assignment(p.n);

    if (cfg.variant == Variant::fpga_opt) {
        run_dataflow(q, p, points, centers, assignment, dev);
    } else {
        const std::size_t chunk = 512;
        const std::size_t num_chunks = (p.n + chunk - 1) / chunk;
        sl::buffer<float> partial_sums(num_chunks * p.k * p.d);
        sl::buffer<int> partial_counts(num_chunks * p.k);
        for (int iter = 0; iter < p.iterations; ++iter)
            run_nd_iteration(q, p, points, centers, assignment, partial_sums,
                             partial_counts, num_chunks, chunk, dev);
    }
    q.wait();

    std::vector<float> got_centers(p.k * p.d);
    q.copy_from_device(centers, got_centers.data());
    const double err = max_rel_error<float>(expected.centers, got_centers);
    require_close(err, 2e-3, "kmeans centers");

    std::vector<int> got_assignment(p.n);
    q.copy_from_device(assignment, got_assignment.data());
    const std::size_t bad =
        mismatch_count<int>(expected.assignment, got_assignment);
    require_close(static_cast<double>(bad) / static_cast<double>(p.n), 0.01,
                  "kmeans assignments");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

void register_app() {
    register_standard_app(
        "kmeans", "Lloyd clustering; FPGA dataflow design with pipes (Fig. 3)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::kmeans
