#include "sycl/graph.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "analyze/recorder.hpp"
#include "analyze/shadow.hpp"
#include "fault/inject.hpp"
#include "metrics/instruments.hpp"
#include "resilience/cancel.hpp"
#include "sycl/event.hpp"
#include "sycl/thread_pool.hpp"

namespace syclite::graph {

namespace fault = altis::fault;

namespace {

[[nodiscard]] std::uint64_t wall_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

enum class node_state { held, pending, ready, running, settled };

[[nodiscard]] bool is_settled(node_state s) { return s == node_state::settled; }

struct node_rec {
    std::uint64_t id = 0;
    std::uint64_t index = 0;  ///< submission order, monotone across epochs
    std::string name;
    node_state state = node_state::held;
    /// Unsatisfied prerequisites: one per unsettled dependency, plus one for
    /// the pending release() (two-phase submit).
    int unmet = 1;
    std::vector<std::uint64_t> dependents;
    detail::small_function<void(thread_pool&)> exec;
    bool transfer = false;
    std::uint64_t cg = 0;
    int actor = -1;
    altis::analyze::recorder* recorder = nullptr;
    double start_ns = 0.0;
    double end_ns = 0.0;
    std::uint64_t ready_wall_ns = 0;
    std::exception_ptr error;
    bool cancelled = false;
};

/// Byte segment of the epoch's conflict map: last writer plus the readers
/// since that write. Segments are disjoint; carving keeps them that way.
struct seg {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint64_t writer = 0;  ///< node id, 0 = none yet
    std::vector<std::uint64_t> readers;
};

}  // namespace

class scheduler_state {
public:
    mutable std::mutex mu;
    std::condition_variable cv;

    std::deque<node_rec> nodes;   ///< current epoch; nodes[i].id = base + i
    std::uint64_t epoch_base = 1;
    std::uint64_t next_id = 1;
    std::uint64_t next_index = 0;
    std::size_t unsettled = 0;
    std::vector<seg> segs;
    std::vector<std::uint64_t> ready;
    std::vector<completion> failures;  ///< settled with error, undelivered
    std::vector<double> lane_end;      ///< kernel display lanes (track >= 2)
    double transfer_end_ns = 0.0;      ///< modeled PCIe lane cursor
    double horizon = 0.0;
    double busy = 0.0;
    std::vector<std::pair<double, double>> kernel_spans;
    thread_pool* pool = nullptr;

    [[nodiscard]] node_rec* find(std::uint64_t id) {
        if (id < epoch_base) return nullptr;
        const std::uint64_t i = id - epoch_base;
        if (i >= nodes.size()) return nullptr;
        return &nodes[i];
    }

    /// Splits segments at `lo` and `hi` so every segment is entirely inside
    /// or outside [lo, hi). Caller holds mu.
    void carve(std::uint64_t lo, std::uint64_t hi) {
        std::vector<seg> split;
        split.reserve(segs.size() + 2);
        for (seg& s : segs) {
            for (const std::uint64_t cut : {lo, hi}) {
                if (cut > s.lo && cut < s.hi) {
                    seg head = s;
                    head.hi = cut;
                    split.push_back(std::move(head));
                    s.lo = cut;
                }
            }
            split.push_back(std::move(s));
        }
        segs = std::move(split);
    }

    /// Collects conflict edges for [lo, hi) and updates the map for node
    /// `id`. RAW: depend on the segment's writer. WAR/WAW: a write also
    /// depends on the readers since that write. Caller holds mu.
    void add_range(std::uint64_t id, std::uint64_t lo, std::uint64_t hi,
                   bool write, std::vector<std::uint64_t>& deps) {
        if (lo >= hi) return;
        carve(lo, hi);
        std::vector<seg> next;
        next.reserve(segs.size() + 1);
        std::uint64_t cursor = lo;  // segs are kept sorted by lo
        std::sort(segs.begin(), segs.end(),
                  [](const seg& a, const seg& b) { return a.lo < b.lo; });
        for (seg& s : segs) {
            if (s.hi <= lo || s.lo >= hi) {
                next.push_back(std::move(s));
                continue;
            }
            // Fully inside [lo, hi) after carving.
            if (s.writer != 0) deps.push_back(s.writer);
            if (write) {
                for (const std::uint64_t r : s.readers) deps.push_back(r);
                cursor = std::max(cursor, s.hi);  // replaced below
                continue;                         // drop: the write covers it
            }
            s.readers.push_back(id);
            next.push_back(std::move(s));
        }
        if (write) {
            next.push_back({lo, hi, id, {}});
        } else {
            // Gap segments: reads of bytes never touched this epoch still
            // need a record so a later write orders after them (WAR).
            std::uint64_t pos = lo;
            std::vector<std::pair<std::uint64_t, std::uint64_t>> covered;
            for (const seg& s : next)
                if (s.hi > lo && s.lo < hi && s.writer != id)
                    if (!s.readers.empty() || s.writer != 0)
                        covered.emplace_back(std::max(s.lo, lo),
                                             std::min(s.hi, hi));
            std::sort(covered.begin(), covered.end());
            for (const auto& [clo, chi] : covered) {
                if (clo > pos) next.push_back({pos, clo, 0, {id}});
                pos = std::max(pos, chi);
            }
            if (pos < hi) next.push_back({pos, hi, 0, {id}});
        }
        segs = std::move(next);
    }

    /// Caller holds mu. Returns true when the node entered the ready list
    /// (the caller decides whether to post a pool task).
    bool make_ready(node_rec& n) {
        n.state = node_state::ready;
        n.ready_wall_ns = altis::metrics::collecting() ? wall_ns() : 0;
        ready.push_back(n.id);
        if (altis::metrics::collecting())
            altis::metrics::instruments::sched_ready_depth().record(
                static_cast<double>(ready.size()));
        return true;
    }
};

namespace {

void settle(const std::shared_ptr<scheduler_state>& st, std::uint64_t id,
            std::exception_ptr error, bool cancelled);

/// Runs one claimed node (state already `running`, exec moved out).
void execute_body(const std::shared_ptr<scheduler_state>& st,
                  std::uint64_t id,
                  detail::small_function<void(thread_pool&)> exec,
                  const std::string& name, bool transfer, std::uint64_t cg,
                  int actor, altis::analyze::recorder* rec,
                  thread_pool* pool) {
    std::exception_ptr error;
    bool cancelled = false;
    try {
        // Dispatch-time checkpoint: a deadline that expired while this node
        // sat in the queue cancels it before a single byte moves.
        altis::resilience::checkpoint();
        fault::maybe_inject(transfer ? fault::op_kind::transfer
                                     : fault::op_kind::launch,
                            name,
                            transfer ? "transfer failed"
                                     : "kernel launch failed");
        const bool metered = altis::metrics::collecting();
        if (metered)
            altis::metrics::instruments::queue_inflight_kernels().add(1);
        {
            altis::analyze::shadow::actor_scope scope(actor);
            exec(*pool);
        }
        if (metered)
            altis::metrics::instruments::queue_inflight_kernels().sub(1);
    } catch (const altis::resilience::cancelled_error&) {
        error = std::current_exception();
        cancelled = true;
        if (altis::metrics::collecting())
            altis::metrics::instruments::sched_cancelled_nodes().add();
    } catch (...) {
        error = std::current_exception();
    }
    if (rec != nullptr && cg != 0) rec->retire(cg);
    settle(st, id, std::move(error), cancelled);
}

/// Claims `id` if still ready and runs it. Posted to the pool; also the
/// join-side work-stealing path. Stale calls (node already claimed, epoch
/// reset) are no-ops.
void run_one(const std::shared_ptr<scheduler_state>& st, std::uint64_t id) {
    detail::small_function<void(thread_pool&)> exec;
    std::string name;
    bool transfer = false;
    std::uint64_t cg = 0;
    int actor = -1;
    altis::analyze::recorder* rec = nullptr;
    thread_pool* pool = nullptr;
    {
        std::lock_guard lock(st->mu);
        node_rec* n = st->find(id);
        if (n == nullptr || n->state != node_state::ready) return;
        n->state = node_state::running;
        st->ready.erase(
            std::find(st->ready.begin(), st->ready.end(), id));
        if (n->ready_wall_ns != 0 && altis::metrics::collecting())
            altis::metrics::instruments::sched_dispatch_latency_ns().record(
                static_cast<double>(wall_ns() - n->ready_wall_ns));
        exec = std::move(n->exec);
        name = n->name;
        transfer = n->transfer;
        cg = n->cg;
        actor = n->actor;
        rec = n->recorder;
        pool = st->pool;
    }
    execute_body(st, id, std::move(exec), name, transfer, cg, actor, rec,
                 pool);
}

void post_dispatch(const std::shared_ptr<scheduler_state>& st,
                   const std::vector<std::uint64_t>& ids) {
    if (ids.empty()) return;
    thread_pool* pool = nullptr;
    {
        std::lock_guard lock(st->mu);
        pool = st->pool;
    }
    if (pool == nullptr || pool->worker_count() == 0) return;
    for (const std::uint64_t id : ids)
        pool->post([st, id] { run_one(st, id); });
}

void settle(const std::shared_ptr<scheduler_state>& st, std::uint64_t id,
            std::exception_ptr error, bool cancelled) {
    std::vector<std::uint64_t> newly_ready;
    {
        std::lock_guard lock(st->mu);
        node_rec* n = st->find(id);
        if (n == nullptr) return;
        n->state = node_state::settled;
        n->error = error;
        n->cancelled = cancelled;
        n->exec = {};
        if (error != nullptr)
            st->failures.push_back({n->index, n->name, error, cancelled});
        --st->unsettled;
        // Dependents run regardless of this node's outcome (in-order queues
        // likewise keep executing after a failed submission); a cancelled
        // epoch cancels them one by one at their own dispatch checkpoint.
        // `held` dependents must be decremented too: a dependency can settle
        // on a pool worker while the dependent's queue is still doing its
        // submit-side bookkeeping (between enqueue() and release()), and
        // skipping the edge here would leave `unmet` permanently positive --
        // the node would never become ready and every later join would hang.
        // The release-hold (+1 in unmet) guarantees a held node cannot reach
        // zero before release(), so decrementing is safe. Ready/running/
        // settled dependents have no unsettled edges left by construction.
        for (const std::uint64_t d : n->dependents) {
            node_rec* m = st->find(d);
            if (m == nullptr || (m->state != node_state::pending &&
                                 m->state != node_state::held))
                continue;
            if (--m->unmet == 0 && st->make_ready(*m))
                newly_ready.push_back(d);
        }
    }
    st->cv.notify_all();
    post_dispatch(st, newly_ready);
}

/// Join-side helper: runs one ready node inline if any. Caller holds `lock`;
/// returns with it re-held.
bool try_run_ready(const std::shared_ptr<scheduler_state>& st,
                   std::unique_lock<std::mutex>& lock) {
    if (st->ready.empty()) return false;
    const std::uint64_t id = st->ready.front();
    lock.unlock();
    run_one(st, id);
    lock.lock();
    return true;
}

}  // namespace

scheduler::scheduler(thread_pool* pool)
    : state_(std::make_shared<scheduler_state>()) {
    state_->pool = pool;
}

scheduler::~scheduler() {
    // The owning queue joins before destruction; this is the backstop for
    // unwind paths. Errors are unobservable here -- drop them.
    wait_all();
}

ticket scheduler::enqueue(submission s) {
    std::vector<std::uint64_t> newly_ready;  // unused: node starts held
    ticket t;
    std::lock_guard lock(state_->mu);
    scheduler_state& st = *state_;
    t.id = st.next_id++;

    std::vector<std::uint64_t> deps;
    for (const std::uint64_t d : s.after)
        if (d != 0 && d != t.id && st.find(d) != nullptr) deps.push_back(d);
    for (const submission::byte_range& r : s.ranges) {
        const auto lo = reinterpret_cast<std::uint64_t>(r.base);
        st.add_range(t.id, lo, lo + r.bytes, r.write, deps);
    }
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    deps.erase(std::remove_if(deps.begin(), deps.end(),
                              [&](std::uint64_t d) {
                                  return d == 0 || d == t.id ||
                                         st.find(d) == nullptr;
                              }),
               deps.end());

    // Deterministic simulated placement, resolved at submit on the host
    // thread: start after the host issued it, after every dependency's
    // modeled end, and (transfers) after the PCIe lane frees up.
    double start = s.submit_ns;
    node_rec n;
    for (const std::uint64_t d : deps) {
        node_rec* dep = st.find(d);
        start = std::max(start, dep->end_ns);
        if (dep->actor > 0) t.dep_actors.push_back(dep->actor);
        if (!is_settled(dep->state)) {
            ++n.unmet;
            dep->dependents.push_back(t.id);
        }
    }
    if (s.transfer) {
        start = std::max(start, st.transfer_end_ns);
        t.lane = 1;
    } else {
        // Greedy lane coloring over kernel lanes (tracks >= 2): reuse the
        // first lane free by `start`, deterministic in submission order.
        std::size_t lane = 0;
        while (lane < st.lane_end.size() && st.lane_end[lane] > start) ++lane;
        if (lane == st.lane_end.size()) st.lane_end.push_back(0.0);
        t.lane = static_cast<int>(lane) + 2;
    }
    const double end = start + s.duration_ns;
    if (s.transfer)
        st.transfer_end_ns = end;
    else
        st.lane_end[static_cast<std::size_t>(t.lane) - 2] = end;
    st.horizon = std::max(st.horizon, end);
    st.busy += s.duration_ns;
    if (!s.transfer) st.kernel_spans.emplace_back(start, end);
    t.start_ns = start;
    t.end_ns = end;
    t.deps = deps;

    n.id = t.id;
    n.index = st.next_index++;
    n.name = std::move(s.name);
    n.exec = std::move(s.exec);
    n.transfer = s.transfer;
    n.cg = s.cg;
    n.actor = s.actor;
    n.recorder = s.recorder;
    n.start_ns = start;
    n.end_ns = end;
    st.nodes.push_back(std::move(n));
    ++st.unsettled;

    if (altis::metrics::collecting()) {
        namespace mi = altis::metrics::instruments;
        mi::sched_nodes().add();
        mi::sched_edges().add(deps.size());
    }
    (void)newly_ready;
    return t;
}

void scheduler::release(std::uint64_t id, int actor) {
    std::vector<std::uint64_t> newly_ready;
    {
        std::lock_guard lock(state_->mu);
        node_rec* n = state_->find(id);
        if (n == nullptr || n->state != node_state::held) return;
        if (actor >= 0) n->actor = actor;
        n->state = node_state::pending;
        if (--n->unmet == 0 && state_->make_ready(*n))
            newly_ready.push_back(id);
    }
    state_->cv.notify_all();
    post_dispatch(state_, newly_ready);
}

void scheduler::wait_all() {
    std::unique_lock lock(state_->mu);
    while (state_->unsettled != 0) {
        if (!try_run_ready(state_, lock))
            state_->cv.wait(lock, [&] {
                return state_->unsettled == 0 || !state_->ready.empty();
            });
    }
}

std::size_t scheduler::pending_count() const {
    std::lock_guard lock(state_->mu);
    return state_->nodes.size();
}

double scheduler::horizon_ns() const {
    std::lock_guard lock(state_->mu);
    return state_->horizon;
}

double scheduler::busy_ns() const {
    std::lock_guard lock(state_->mu);
    return state_->busy;
}

std::vector<std::pair<double, double>> scheduler::kernel_spans() const {
    std::lock_guard lock(state_->mu);
    return state_->kernel_spans;
}

std::vector<completion> scheduler::drain_errors() {
    std::lock_guard lock(state_->mu);
    std::vector<completion> out = std::move(state_->failures);
    state_->failures.clear();
    std::sort(out.begin(), out.end(),
              [](const completion& a, const completion& b) {
                  return a.index < b.index;
              });
    return out;
}

void scheduler::reset_epoch() {
    std::lock_guard lock(state_->mu);
    scheduler_state& st = *state_;
    if (st.unsettled != 0) return;  // join first; keep the epoch intact
    st.epoch_base = st.next_id;
    st.nodes.clear();
    st.segs.clear();
    st.ready.clear();
    st.lane_end.clear();
    st.transfer_end_ns = 0.0;
    st.horizon = 0.0;
    st.busy = 0.0;
    st.kernel_spans.clear();
}

void scheduler::set_pool(thread_pool* pool) {
    std::lock_guard lock(state_->mu);
    state_->pool = pool;
}

void wait_node(const std::shared_ptr<scheduler_state>& st, std::uint64_t id) {
    if (st == nullptr || id == 0) return;
    int actor = -1;
    altis::analyze::recorder* rec = nullptr;
    std::unique_lock lock(st->mu);
    for (;;) {
        node_rec* n = st->find(id);
        if (n == nullptr) break;  // earlier epoch: settled and joined
        if (is_settled(n->state)) {
            actor = n->actor;
            rec = n->recorder;
            break;
        }
        if (!try_run_ready(st, lock))
            st->cv.wait(lock, [&] {
                node_rec* m = st->find(id);
                return m == nullptr || is_settled(m->state) ||
                       !st->ready.empty();
            });
    }
    lock.unlock();
    // The node's shadow clock already joined its dependencies at submit, so
    // one host join covers the transitive closure.
    if (rec != nullptr) rec->record_host_join_actor(actor);
}

}  // namespace syclite::graph

namespace syclite {

void event::wait() const {
    if (graph_ != nullptr) graph::wait_node(graph_, cmd_);
}

}  // namespace syclite
