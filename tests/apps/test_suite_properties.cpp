// Cross-application property tests over the suite view: invariants every
// figure bench relies on, checked for all 13 configurations x devices.
#include "apps/common/suite.hpp"

#include <gtest/gtest.h>

#include "apps/common/app.hpp"
#include "perf/resource_model.hpp"

namespace altis::bench {
namespace {

namespace apps = altis::apps;
namespace perf = altis::perf;

class SuiteEntries : public ::testing::TestWithParam<std::size_t> {
protected:
    const SuiteEntry& entry() const { return suite()[GetParam()]; }
};

TEST_P(SuiteEntries, RegionsExistForEverySupportedVariantAndDevice) {
    const auto& e = entry();
    for (const auto& dev : perf::device_catalog()) {
        for (const Variant v :
             {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
              Variant::fpga_base, Variant::fpga_opt}) {
            if (!apps::variant_allowed(v, dev)) continue;
            if (e.crashes && e.crashes(dev, v, 2)) continue;
            if (!e.in_fig45 && v == Variant::fpga_opt) continue;  // DWT2D
            const apps::timed_region r = e.region(v, dev, 2);
            EXPECT_GT(r.total_launches(), 0.0) << e.label << " " << dev.name;
            const auto t = apps::simulate_region(r, dev, apps::runtime_for(v));
            EXPECT_GT(t.kernel_ms(), 0.0) << e.label << " " << dev.name;
            EXPECT_GT(t.non_kernel_ms(), 0.0) << e.label << " " << dev.name;
        }
    }
}

// Bigger presets must take longer on every device (sanity of the size
// scaling encoded in each app's descriptor builders).
TEST_P(SuiteEntries, TotalTimeGrowsWithSize) {
    const auto& e = entry();
    for (const char* dev : {"rtx_2080", "xeon_6128"}) {
        const auto t1 = total_ms(e, Variant::sycl_opt, dev, 1);
        const auto t3 = total_ms(e, Variant::sycl_opt, dev, 3);
        ASSERT_TRUE(t1 && t3) << e.label;
        EXPECT_GT(*t3, *t1 * 1.5) << e.label << " on " << dev;
    }
}

// Every optimized FPGA design must fit both boards and clock inside the
// plausible SYCL-kernel range (Table 3's premise).
TEST_P(SuiteEntries, FpgaOptDesignsFitAndClockPlausibly) {
    const auto& e = entry();
    if (!e.in_fig45) return;  // DWT2D ships no optimized design
    for (const char* dev_name : {"stratix_10", "agilex"}) {
        const auto& dev = perf::device_by_name(dev_name);
        for (int size : {1, 2, 3}) {
            const auto usage =
                perf::estimate_design_resources(e.fpga_design(dev, size), dev);
            EXPECT_TRUE(usage.fits)
                << e.label << " size " << size << " on " << dev_name << ": "
                << usage.failure_reason;
            EXPECT_TRUE(usage.timing_clean)
                << e.label << " size " << size << ": " << usage.failure_reason;
            EXPECT_GE(usage.fmax_mhz, 80.0) << e.label;
            EXPECT_LE(usage.fmax_mhz, dev.fmax_mhz) << e.label;
        }
    }
}

// Table 3's across-the-board observation: every design achieves a higher
// frequency on Agilex than on Stratix 10.
TEST_P(SuiteEntries, AgilexClocksHigherThanStratix10) {
    const auto& e = entry();
    if (!e.in_fig45) return;
    const auto& s10 = perf::device_by_name("stratix_10");
    const auto& agx = perf::device_by_name("agilex");
    const double f_s10 =
        perf::estimate_design_resources(e.fpga_design(s10, 2), s10).fmax_mhz;
    const double f_agx =
        perf::estimate_design_resources(e.fpga_design(agx, 2), agx).fmax_mhz;
    EXPECT_GT(f_agx, f_s10) << e.label;
}

// The optimized FPGA variant must never be slower than the baseline it was
// derived from (Fig. 4 is all >= 1).
TEST_P(SuiteEntries, FpgaOptimizationNeverRegresses) {
    const auto& e = entry();
    if (!e.in_fig45) return;
    for (int size : {1, 2, 3}) {
        const auto base = total_ms(e, Variant::fpga_base, "stratix_10", size);
        const auto opt = total_ms(e, Variant::fpga_opt, "stratix_10", size);
        ASSERT_TRUE(base && opt) << e.label;
        EXPECT_GE(*base / *opt, 0.99) << e.label << " size " << size;
    }
}

// The HBM projection must never hurt: more bandwidth, same or better time.
TEST_P(SuiteEntries, HbmProjectionIsMonotone) {
    const auto& e = entry();
    if (!e.in_fig45) return;
    for (int size : {1, 2}) {
        const auto ddr = total_ms(e, Variant::fpga_opt, "agilex", size);
        const auto hbm = total_ms(e, Variant::fpga_opt, "agilex_hbm", size);
        ASSERT_TRUE(ddr && hbm) << e.label;
        EXPECT_LE(*hbm, *ddr * 1.02) << e.label << " size " << size;
    }
}

INSTANTIATE_TEST_SUITE_P(AllApps, SuiteEntries,
                         ::testing::Range<std::size_t>(0, 13),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                             std::string n = suite()[info.param].label;
                             for (auto& c : n)
                                 if (c == ' ') c = '_';
                             return n;
                         });

TEST(Suite, HasThirteenFig2Columns) {
    ASSERT_EQ(suite().size(), 13u);
    int fig45 = 0;
    for (const auto& e : suite()) fig45 += e.in_fig45 ? 1 : 0;
    EXPECT_EQ(fig45, 12);  // DWT2D is Fig. 2 only
}

TEST(Suite, Fig5DeviceOrderMatchesPaper) {
    const auto devs = fig5_devices();
    ASSERT_EQ(devs.size(), 5u);
    EXPECT_EQ(devs[0], "rtx_2080");
    EXPECT_EQ(devs[4], "agilex");
}

TEST(Suite, CudaNotAvailableOnMax1100) {
    // The Fig. 2 comparison only exists on NVIDIA hardware.
    EXPECT_FALSE(bench::total_ms(suite()[0], Variant::cuda, "max_1100", 1)
                     .has_value());
}

TEST(Suite, WhereCrashPropagatesAsNullopt) {
    for (const auto& e : suite()) {
        if (e.label != "Where") continue;
        EXPECT_FALSE(total_ms(e, Variant::fpga_opt, "agilex", 3).has_value());
        EXPECT_TRUE(total_ms(e, Variant::fpga_opt, "stratix_10", 3).has_value());
    }
}

}  // namespace
}  // namespace altis::bench
