# Empty compiler generated dependencies file for table2_devices.
# This may be replaced when dependencies are built.
