# Empty compiler generated dependencies file for fig2_gpu_speedup.
# This may be replaced when dependencies are built.
