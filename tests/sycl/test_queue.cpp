#include "sycl/syclite.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace syclite {
namespace {

perf::kernel_stats simple_stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 2.0;
    k.bytes_read = 4.0;
    k.bytes_written = 4.0;
    return k;
}

TEST(Queue, ParallelForComputesFunctionally) {
    queue q("rtx_2080");
    buffer<int> b(1024);
    q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(1024), range<1>(64)),
                       simple_stats("iota"), [=](nd_item<1> it) {
                           acc[it.get_global_id(0)] =
                               static_cast<int>(it.get_global_id(0));
                       });
    });
    q.wait();
    for (int i = 0; i < 1024; ++i) EXPECT_EQ(b.host_data()[i], i);
}

TEST(Queue, EventTimelineAdvancesMonotonically) {
    queue q("a100");
    buffer<int> b(256);
    event e1, e2;
    auto submit_one = [&] {
        return q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::read_write);
            h.parallel_for(nd_range<1>(range<1>(256), range<1>(64)),
                           simple_stats("k"),
                           [=](nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
        });
    };
    e1 = submit_one();
    e2 = submit_one();
    EXPECT_GT(e1.profiling_start_ns(), e1.profiling_submit_ns());
    EXPECT_GT(e1.duration_ns(), 0.0);
    EXPECT_GE(e2.profiling_submit_ns(), e1.profiling_end_ns());
}

TEST(Queue, KernelAndNonKernelRegionsAccumulate) {
    queue q("rtx_2080");
    buffer<int> b(64);
    q.submit([&](handler& h) {
        auto acc = h.get_access(b, access_mode::discard_write);
        h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)),
                       simple_stats("k"),
                       [=](nd_item<1> it) { acc[it.get_global_id(0)] = 0; });
    });
    q.wait();
    EXPECT_GT(q.kernel_ns(), 0.0);
    EXPECT_GT(q.non_kernel_ns(), 0.0);
    EXPECT_NEAR(q.sim_now_ns(), q.kernel_ns() + q.non_kernel_ns(), 1e-6);
}

TEST(Queue, SyclLaunchOverheadExceedsCuda) {
    const auto& dev = perf::device_by_name("rtx_2080");
    queue qc(dev, perf::runtime_kind::cuda);
    queue qs(dev, perf::runtime_kind::sycl);
    buffer<int> b(64);
    auto launch = [&](queue& q) {
        q.reset_timers();
        q.submit([&](handler& h) {
            auto acc = h.get_access(b, access_mode::discard_write);
            h.parallel_for(nd_range<1>(range<1>(64), range<1>(64)),
                           simple_stats("k"),
                           [=](nd_item<1> it) { acc[it.get_global_id(0)] = 0; });
        });
        return q.non_kernel_ns();
    };
    EXPECT_GT(launch(qs), launch(qc));
}

TEST(Queue, TransferChargesNonKernelTime) {
    queue q("rtx_2080");
    std::vector<float> host(1 << 20, 1.0f);
    buffer<float> b(host.size());
    const double before = q.non_kernel_ns();
    q.copy_to_device(b, host.data());
    EXPECT_GT(q.non_kernel_ns(), before);
    EXPECT_FLOAT_EQ(b.host_data()[123], 1.0f);
}

TEST(Queue, SingleTaskRunsOnce) {
    queue q("stratix_10");
    buffer<int> counter(1);
    counter.host_data()[0] = 0;
    perf::kernel_stats k = simple_stats("st");
    perf::loop_info loop;
    loop.trip_count = 100;
    k.loops.push_back(loop);
    q.submit([&](handler& h) {
        auto acc = h.get_access(counter, access_mode::read_write);
        h.single_task(k, [=]() { acc[0] += 1; });
    });
    EXPECT_EQ(counter.host_data()[0], 1);
}

TEST(Queue, DataflowKernelsCommunicateThroughPipe) {
    queue q("stratix_10");
    const int n = 1000;
    buffer<int> out(n);
    pipe<int> p(16);
    q.begin_dataflow();
    q.submit([&](handler& h) {
        perf::kernel_stats k = simple_stats("producer");
        k.writes_pipe = true;
        h.single_task(k, [&p, n]() {
            for (int i = 0; i < n; ++i) p.write(i * 3);
        });
    });
    q.submit([&](handler& h) {
        auto acc = h.get_access(out, access_mode::discard_write);
        perf::kernel_stats k = simple_stats("consumer");
        k.reads_pipe = true;
        h.single_task(k, [&p, acc, n]() {
            for (int i = 0; i < n; ++i) acc[i] = p.read();
        });
    });
    const auto events = q.end_dataflow();
    ASSERT_EQ(events.size(), 2u);
    for (int i = 0; i < n; ++i) EXPECT_EQ(out.host_data()[i], i * 3);
    // Overlap: both kernels share a start time.
    EXPECT_DOUBLE_EQ(events[0].profiling_start_ns(),
                     events[1].profiling_start_ns());
}

TEST(Queue, DataflowGroupTimeIsMaxNotSum) {
    queue q("stratix_10");
    perf::kernel_stats heavy = simple_stats("heavy");
    perf::loop_info loop;
    loop.trip_count = 1e6;
    heavy.loops.push_back(loop);
    perf::kernel_stats light = simple_stats("light");
    perf::loop_info small;
    small.trip_count = 10;
    light.loops.push_back(small);

    q.begin_dataflow();
    q.submit([&](handler& h) { h.single_task(heavy, [] {}); });
    q.submit([&](handler& h) { h.single_task(light, [] {}); });
    const auto events = q.end_dataflow();
    const double wall = q.kernel_ns();
    const double dmax =
        std::max(events[0].duration_ns(), events[1].duration_ns());
    EXPECT_NEAR(wall, dmax, 1e-6);
    EXPECT_LT(wall, events[0].duration_ns() + events[1].duration_ns());
}

TEST(Queue, WaitInsideDataflowThrows) {
    queue q("agilex");
    q.begin_dataflow();
    EXPECT_THROW(q.wait(), std::logic_error);
    q.end_dataflow();
}

TEST(Queue, NestedDataflowThrows) {
    queue q("agilex");
    q.begin_dataflow();
    EXPECT_THROW(q.begin_dataflow(), std::logic_error);
    q.end_dataflow();
}

TEST(Queue, KernelExceptionInDataflowPropagates) {
    queue q("stratix_10");
    q.begin_dataflow();
    q.submit([&](handler& h) {
        h.single_task(simple_stats("boom"),
                      [] { throw std::runtime_error("kernel failure"); });
    });
    EXPECT_THROW(q.end_dataflow(), std::runtime_error);
}

TEST(Queue, TwoKernelsInOneCommandGroupThrow) {
    queue q("rtx_2080");
    EXPECT_THROW(q.submit([&](handler& h) {
        h.single_task(simple_stats("a"), [] {});
        h.single_task(simple_stats("b"), [] {});
    }),
                 std::logic_error);
}

TEST(Queue, ResetTimersClearsState) {
    queue q("rtx_2080");
    q.charge_setup();
    EXPECT_GT(q.sim_now_ns(), 0.0);
    q.reset_timers();
    EXPECT_DOUBLE_EQ(q.sim_now_ns(), 0.0);
    EXPECT_DOUBLE_EQ(q.kernel_ns(), 0.0);
    EXPECT_TRUE(q.events().empty());
}

TEST(Queue, SetDesignOnNonFpgaThrows) {
    queue q("a100");
    EXPECT_THROW(q.set_design({}), std::logic_error);
}

}  // namespace
}  // namespace syclite
