#include "dpct/dpct.hpp"

#include <algorithm>
#include <array>
#include <ostream>

#include "core/report.hpp"

namespace altis::dpct {

const char* to_string(diagnostic_id id) {
    switch (id) {
        case diagnostic_id::DPCT1003: return "DPCT1003";
        case diagnostic_id::DPCT1012: return "DPCT1012";
        case diagnostic_id::DPCT1049: return "DPCT1049";
        case diagnostic_id::DPCT1059: return "DPCT1059";
        case diagnostic_id::DPCT1063: return "DPCT1063";
        case diagnostic_id::DPCT1065: return "DPCT1065";
        case diagnostic_id::DPCT1084: return "DPCT1084";
    }
    return "DPCT????";
}

const char* description(diagnostic_id id) {
    switch (id) {
        case diagnostic_id::DPCT1003:
            return "migrated API does not return an error code; rewritten "
                   "error handling needs review";
        case diagnostic_id::DPCT1012:
            return "kernel time measurement migrated from CUDA events to "
                   "std::chrono; not comparable with event timing";
        case diagnostic_id::DPCT1049:
            return "work-group size passed to the kernel may exceed the "
                   "device limit";
        case diagnostic_id::DPCT1059:
            return "texture/image API migrated; access mode needs review";
        case diagnostic_id::DPCT1063:
            return "mem_advise advice parameter is device-defined; verify "
                   "the value for the target device";
        case diagnostic_id::DPCT1065:
            return "consider sycl::nd_item::barrier(fence_space::local_space) "
                   "for better performance if there is no global access";
        case diagnostic_id::DPCT1084:
            return "constant-memory wrapper usage needs review";
    }
    return "";
}

int migration_result::warning_count() const {
    int total = 0;
    for (const auto& d : diagnostics) total += d.count;
    return total;
}

double migration_result::auto_migrated_fraction() const {
    return loc == 0 ? 0.0
                    : static_cast<double>(auto_migrated_loc) /
                          static_cast<double>(loc);
}

migration_result migrate(const cuda_source_manifest& m) {
    migration_result r;
    r.app = m.app;
    r.loc = m.lines_of_code;

    auto add = [&](diagnostic_id id, int count, bool manual) {
        if (count > 0) r.diagnostics.push_back({id, count, manual});
    };
    // Every cudaEventRecord start/stop pair becomes two std::chrono sites,
    // each annotated (the paper's "time measurements" warning class).
    add(diagnostic_id::DPCT1012, 2 * m.cuda_event_timer_pairs, true);
    // Every mem_advise call carries a device-defined advice value.
    add(diagnostic_id::DPCT1063, m.mem_advise_calls, true);
    // Barriers whose fence scope DPCT cannot prove local stay global and are
    // annotated as a performance hint (Sec. 3.2.1).
    add(diagnostic_id::DPCT1065,
        std::max(0, m.barriers - m.barriers_detectable_local), true);
    add(diagnostic_id::DPCT1003, m.error_code_checks, false);
    add(diagnostic_id::DPCT1049, m.default_wg_size_kernels, true);
    add(diagnostic_id::DPCT1059, m.texture_refs, true);
    add(diagnostic_id::DPCT1084, m.constant_memory_objects, true);

    // Issues DPCT performs silently or not at all (Sec. 3.2.2): no inline
    // warning, discovered only at compile/run time.
    if (m.device_new_delete > 0)
        r.silent_issues.push_back(
            "device-side new/delete not supported in SYCL kernels; move "
            "allocations to the host (no DPCT annotation)");
    if (m.virtual_functions > 0)
        r.silent_issues.push_back(
            "virtual functions unsupported in standard SYCL device code; "
            "requires refactoring (no DPCT annotation)");
    if (m.constant_memory_objects >= 4)
        r.silent_issues.push_back(
            "dpct constant-memory wrappers may be initialized after first "
            "use (segmentation fault until the helper headers are dropped)");
    r.runs_after_warning_fixes = r.silent_issues.empty();

    // Auto-migrated fraction: warnings and silent issues each cost manual
    // lines; DPCT's own claim is ~90-95% (Sec. 2.1).
    const int manual_lines =
        r.warning_count() + 40 * static_cast<int>(r.silent_issues.size());
    r.auto_migrated_loc = std::max(0, r.loc - manual_lines);
    return r;
}

namespace {

std::array<cuda_source_manifest, 12> make_manifests() {
    std::array<cuda_source_manifest, 12> m{};
    // app, loc, kernels, timers, advise, barriers, local-provable, errchecks,
    // textures, constmem, thrust, default-wg kernels, new/delete, virtuals,
    // pow(x,2)
    m[0] = {"cfd", 4200, 9, 36, 40, 48, 16, 135, 0, 2, 0, 8, 0, 0, 0};
    m[1] = {"dwt2d", 5200, 14, 48, 24, 130, 44, 120, 2, 2, 0, 14, 0, 0, 0};
    m[2] = {"fdtd2d", 2400, 3, 30, 18, 12, 6, 90, 0, 0, 0, 3, 0, 0, 0};
    m[3] = {"kmeans", 2800, 5, 28, 22, 40, 14, 110, 0, 0, 2, 5, 0, 0, 0};
    m[4] = {"lavamd", 2200, 2, 18, 14, 36, 12, 80, 0, 1, 0, 2, 3, 0, 0};
    m[5] = {"mandelbrot", 1400, 3, 12, 8, 4, 2, 60, 0, 0, 0, 3, 0, 0, 0};
    m[6] = {"nw", 2300, 2, 20, 16, 62, 20, 85, 0, 0, 0, 2, 0, 0, 0};
    m[7] = {"particlefilter", 4800, 8, 44, 30, 70, 24, 130, 1, 1, 0, 8, 0, 0, 98};
    m[8] = {"raytracing", 5200, 4, 26, 18, 10, 4, 95, 0, 2, 1, 4, 6, 23, 0};
    m[9] = {"srad", 3800, 6, 34, 26, 66, 22, 140, 0, 5, 0, 6, 0, 0, 0};
    m[10] = {"where", 2600, 4, 22, 18, 24, 8, 95, 0, 0, 6, 4, 0, 0, 0};
    m[11] = {"suite common", 2600, 0, 24, 30, 0, 0, 40, 0, 2, 2, 0, 0, 0, 0};
    return m;
}

const std::array<cuda_source_manifest, 12>& manifests_storage() {
    static const auto m = make_manifests();
    return m;
}

}  // namespace

std::span<const cuda_source_manifest> altis_manifests() {
    return manifests_storage();
}

suite_report migrate_suite(std::span<const cuda_source_manifest> manifests) {
    suite_report rep;
    double auto_loc = 0.0;
    int running = 0;
    for (const auto& m : manifests) {
        migration_result r = migrate(m);
        rep.total_loc += r.loc;
        rep.total_warnings += r.warning_count();
        auto_loc += r.auto_migrated_loc;
        if (r.runs_after_warning_fixes) ++running;
        rep.apps.push_back(std::move(r));
    }
    rep.auto_migrated_fraction =
        rep.total_loc == 0 ? 0.0 : auto_loc / static_cast<double>(rep.total_loc);
    rep.runs_without_errors_fraction =
        rep.apps.empty() ? 0.0
                         : static_cast<double>(running) /
                               static_cast<double>(rep.apps.size());
    return rep;
}

void render(const suite_report& report, std::ostream& out) {
    Table t({"Application", "LoC", "Warnings", "Auto-migrated", "Runs after "
             "warning fixes", "Silent issues (Sec. 3.2.2)"});
    for (const auto& r : report.apps) {
        std::string issues;
        for (std::size_t i = 0; i < r.silent_issues.size(); ++i)
            issues += (i ? "; " : "") +
                      r.silent_issues[i].substr(0, r.silent_issues[i].find(';'));
        t.add_row({r.app, std::to_string(r.loc),
                   std::to_string(r.warning_count()),
                   Table::percent(r.auto_migrated_fraction()),
                   r.runs_after_warning_fixes ? "yes" : "NO",
                   issues.empty() ? "-" : issues});
    }
    t.print(out);
    out << "\nSuite totals: " << report.total_loc << " lines of CUDA, "
        << report.total_warnings << " DPCT warnings, "
        << Table::percent(report.auto_migrated_fraction)
        << " auto-migrated, "
        << Table::percent(report.runs_without_errors_fraction)
        << " of applications run after addressing only the warnings.\n"
        << "Paper reference: ~40k lines, 2,535 warnings, 90-95% "
           "auto-migration, ~70% running before the Sec. 3.2.2 fixes.\n";

    out << "\nWarning breakdown:\n";
    Table b({"Diagnostic", "Count", "Meaning"});
    for (const diagnostic_id id :
         {diagnostic_id::DPCT1003, diagnostic_id::DPCT1012,
          diagnostic_id::DPCT1049, diagnostic_id::DPCT1059,
          diagnostic_id::DPCT1063, diagnostic_id::DPCT1065,
          diagnostic_id::DPCT1084}) {
        int count = 0;
        for (const auto& r : report.apps)
            for (const auto& d : r.diagnostics)
                if (d.id == id) count += d.count;
        b.add_row({to_string(id), std::to_string(count), description(id)});
    }
    b.print(out);
}

}  // namespace altis::dpct
