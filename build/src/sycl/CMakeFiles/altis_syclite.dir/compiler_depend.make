# Empty compiler generated dependencies file for altis_syclite.
# This may be replaced when dependencies are built.
