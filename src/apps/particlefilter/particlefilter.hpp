// ParticleFilter: sequential importance resampling (SIR) estimator tracking
// a moving object through a synthetic video (Altis Level-2). Two Altis
// configurations are reproduced: PF Naive (O(N^2) linear-search resampling,
// all in global memory) and PF Float (the float-optimized version whose
// original CUDA used pow(a,2) -- DPCT's a*a substitution bought up to 6x,
// Sec. 3.3). On FPGAs both become branch-heavy Single-Task designs that only
// close timing at ~105 MHz (Table 3) and rely on heavy compute-unit
// replication, retuned 10x->4x and 50x->24x from Stratix 10 to Agilex
// (Sec. 5.5).
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::particlefilter {

enum class flavor { naive, floatopt };

struct params {
    std::size_t particles = 1024;
    int frames = 8;
    std::size_t grid = 128;  ///< video is grid x grid
    std::uint64_t seed = 0x9f17ULL;

    /// Presets differ per flavour, as in Altis: the naive configuration uses
    /// far fewer particles because its O(N^2) resampling would otherwise
    /// never finish; the float configuration scales the particle count up.
    [[nodiscard]] static params preset(int size, flavor f);
    [[nodiscard]] static params preset(int size) {
        return preset(size, flavor::naive);
    }
};

struct estimate {
    std::vector<float> xe, ye;  ///< per-frame position estimates
};

/// Synthetic video: a bright disk moving diagonally over speckle noise.
[[nodiscard]] std::vector<std::uint8_t> make_video(const params& p);

/// Host reference SIR filter (deterministic counter-based RNG).
[[nodiscard]] estimate golden(const params& p, flavor f,
                              std::span<const std::uint8_t> video);

AppResult run_flavor(const RunConfig& cfg, flavor f);
AppResult run_naive(const RunConfig& cfg);
AppResult run_float(const RunConfig& cfg);

[[nodiscard]] timed_region region(flavor f, Variant v,
                                  const perf::device_spec& dev, int size);

/// The original CUDA with DPCT's pow(a,2) -> a*a transformation applied
/// back (Sec. 3.3): the comparison point of Fig. 2's Optimized panel, where
/// both versions reach "a performance-comparable level".
[[nodiscard]] timed_region region_cuda_pow_fixed(flavor f,
                                                 const perf::device_spec& dev,
                                                 int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    flavor f, const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "Single-Task";

void register_apps();  // registers "pf_naive" and "pf_float"

}  // namespace altis::apps::particlefilter
