#include "analyze/perf_lint.hpp"

#include <cmath>
#include <span>
#include <string>

#include "perf/resource_model.hpp"

namespace altis::analyze {

namespace {

void lint_kernel(const perf::kernel_stats& k, const perf::device_spec* dev,
                 report& out) {
    if (k.pow_const_exp_ops > 0.0)
        out.add(make_finding(
            "ALS-L1", k.name, "pow()",
            std::to_string(static_cast<long long>(k.pow_const_exp_ops)) +
                " pow(x, const) calls per work-item expand to exp/log "
                "sequences"));

    if (dev == nullptr || !dev->is_fpga()) return;

    if (k.simd > 1 && k.wg_size > 0.0 &&
        std::fmod(k.wg_size, static_cast<double>(k.simd)) != 0.0)
        out.add(make_finding(
            "ALS-L2", k.name, "simd=" + std::to_string(k.simd),
            "work-group size " +
                std::to_string(static_cast<long long>(k.wg_size)) +
                " is not a multiple of num_simd_work_items -- the attribute "
                "is ignored"));

    for (const perf::loop_info& l : k.loops)
        if (l.unroll > 1 && l.trip_count > 0.0 &&
            static_cast<double>(l.unroll) > l.trip_count)
            out.add(make_finding(
                "ALS-L3", k.name, l.name,
                "unroll " + std::to_string(l.unroll) +
                    " exceeds the loop's trip count (" +
                    std::to_string(static_cast<long long>(l.trip_count)) +
                    ")"));

    // The fit verdict (placement limit, shell overhead) is only computed at
    // design level; lint each kernel as a single-kernel design.
    const perf::resource_usage ru =
        perf::estimate_design_resources(std::span<const perf::kernel_stats>(&k, 1), *dev);
    if (!ru.fits) {
        out.add(make_finding("ALS-L6", k.name, dev->name,
                             "does not fit: " + ru.failure_reason));
        return;  // the fit failure dominates any tuning lint
    }
    if (k.unroll > 1 && k.pattern == perf::local_pattern::congested &&
        !ru.timing_clean)
        out.add(make_finding(
            "ALS-L3", k.name, "unroll=" + std::to_string(k.unroll),
            "unrolling multiplies arbitrated local-memory accesses on a "
            "design that already misses timing closure"));
    if (k.library)
        out.add(make_finding("ALS-L4", k.name, dev->name,
                             "GPU-shaped library call scheduled on an FPGA"));
}

}  // namespace

void lint_descriptors(const command_graph& g, report& out) {
    for (const node& n : g.nodes)
        if (n.kind == node_kind::kernel && !n.stats.name.empty())
            lint_kernel(n.stats, n.device, out);
}

}  // namespace altis::analyze
