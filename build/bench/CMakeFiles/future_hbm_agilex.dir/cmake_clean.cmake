file(REMOVE_RECURSE
  "CMakeFiles/future_hbm_agilex.dir/future_hbm_agilex.cpp.o"
  "CMakeFiles/future_hbm_agilex.dir/future_hbm_agilex.cpp.o.d"
  "future_hbm_agilex"
  "future_hbm_agilex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_hbm_agilex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
