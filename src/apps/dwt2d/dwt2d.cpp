#include "apps/dwt2d/dwt2d.hpp"

#include <cmath>

#include "apps/common/verify.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::dwt2d {

params params::preset(int size) {
    switch (size) {
        case 1: return {512, 512};
        case 2: return {2048, 2048};
        case 3: return {4096, 4096};
        default: throw std::invalid_argument("dwt2d: size must be 1..3");
    }
}

std::vector<float> make_image(const params& p) {
    std::vector<float> img(p.pixels());
    for (std::size_t i = 0; i < p.height; ++i)
        for (std::size_t j = 0; j < p.width; ++j)
            img[i * p.width + j] =
                std::sin(static_cast<float>(i) * 0.07f) *
                    std::cos(static_cast<float>(j) * 0.11f) * 96.0f +
                static_cast<float>((i * 31 + j * 17) % 64);
    return img;
}

namespace {

// CDF 9/7 lifting coefficients (JPEG2000 irreversible filter).
constexpr float kA1 = -1.58613434342059f;
constexpr float kA2 = -0.0529801185729f;
constexpr float kA3 = 0.8829110755309f;
constexpr float kA4 = 0.4435068520439f;
constexpr float kK = 1.1496043988602f;

/// In-place 1D CDF 9/7 forward lifting on `n` strided samples; result is
/// deinterleaved into low[0..n/2) then high[n/2..n). Shared verbatim by
/// golden and kernels.
void fdwt97_1d(float* data, std::size_t n, std::size_t stride,
               float* scratch) {
    auto at = [&](std::size_t i) -> float& { return data[i * stride]; };
    // Predict/update passes with symmetric boundary extension.
    auto left = [&](std::size_t i) { return i == 0 ? at(1) : at(i - 1); };
    auto right = [&](std::size_t i) { return i + 1 >= n ? at(n - 2) : at(i + 1); };
    for (std::size_t i = 1; i < n; i += 2) at(i) += kA1 * (left(i) + right(i));
    for (std::size_t i = 0; i < n; i += 2) at(i) += kA2 * (left(i) + right(i));
    for (std::size_t i = 1; i < n; i += 2) at(i) += kA3 * (left(i) + right(i));
    for (std::size_t i = 0; i < n; i += 2) at(i) += kA4 * (left(i) + right(i));
    for (std::size_t i = 0; i < n; ++i) {
        const float v = at(i);
        if (i % 2 == 0)
            scratch[i / 2] = v / kK;  // approximation band
        else
            scratch[n / 2 + i / 2] = v * kK;  // detail band
    }
    for (std::size_t i = 0; i < n; ++i) at(i) = scratch[i];
}

/// Exact inverse of fdwt97_1d: re-interleave, then run the lifting steps
/// backwards with negated coefficients.
void idwt97_1d(float* data, std::size_t n, std::size_t stride,
               float* scratch) {
    auto at = [&](std::size_t i) -> float& { return data[i * stride]; };
    for (std::size_t i = 0; i < n; ++i) scratch[i] = at(i);
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0)
            at(i) = scratch[i / 2] * kK;  // undo the /kK scaling
        else
            at(i) = scratch[n / 2 + i / 2] / kK;
    }
    auto left = [&](std::size_t i) { return i == 0 ? at(1) : at(i - 1); };
    auto right = [&](std::size_t i) { return i + 1 >= n ? at(n - 2) : at(i + 1); };
    for (std::size_t i = 0; i < n; i += 2) at(i) -= kA4 * (left(i) + right(i));
    for (std::size_t i = 1; i < n; i += 2) at(i) -= kA3 * (left(i) + right(i));
    for (std::size_t i = 0; i < n; i += 2) at(i) -= kA2 * (left(i) + right(i));
    for (std::size_t i = 1; i < n; i += 2) at(i) -= kA1 * (left(i) + right(i));
}

}  // namespace

void inverse(const params& p, std::vector<float>& image) {
    std::vector<float> scratch(std::max(p.width, p.height));
    // Undo levels in reverse order, smallest LL first.
    for (int level = kLevels - 1; level >= 0; --level) {
        const std::size_t w = p.width >> level;
        const std::size_t h = p.height >> level;
        for (std::size_t j = 0; j < w; ++j)  // vertical first (reverse order)
            idwt97_1d(&image[j], h, p.width, scratch.data());
        for (std::size_t i = 0; i < h; ++i)
            idwt97_1d(&image[i * p.width], w, 1, scratch.data());
    }
}

void golden(const params& p, std::vector<float>& image) {
    std::vector<float> scratch(std::max(p.width, p.height));
    std::size_t w = p.width, h = p.height;
    for (int level = 0; level < kLevels; ++level) {
        for (std::size_t i = 0; i < h; ++i)  // horizontal pass
            fdwt97_1d(&image[i * p.width], w, 1, scratch.data());
        for (std::size_t j = 0; j < w; ++j)  // vertical pass
            fdwt97_1d(&image[j], h, p.width, scratch.data());
        w /= 2;
        h /= 2;
    }
}

namespace detail {

perf::kernel_stats stats_pass(const params& p, Variant v,
                              const perf::device_spec& dev, std::size_t lines,
                              std::size_t line_len, const char* name);

}  // namespace detail

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    if (cfg.variant == Variant::fpga_opt)
        throw std::invalid_argument(
            "dwt2d: no optimized FPGA version exists (Sec. 5.4: the shared-"
            "memory congestion would need an algorithmic rewrite)");
    const params p = params::preset(cfg.size);

    std::vector<float> expected = make_image(p);
    golden(p, expected);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    const std::vector<float> init = make_image(p);
    sl::buffer<float> img(p.pixels());
    q.copy_to_device(img, init.data());

    std::size_t w = p.width, h = p.height;
    for (int level = 0; level < kLevels; ++level) {
        q.submit([&](sl::handler& h2) {  // horizontal pass: one item per row
            auto a = h2.get_access(img, sl::access_mode::read_write);
            const std::size_t rows = h, len = w, pitch = p.width;
            h2.parallel_for_work_group(
                sl::range<1>(rows / 64 + (rows % 64 ? 1 : 0)), sl::range<1>(64),
                detail::stats_pass(p, cfg.variant, dev, rows, len, "fdwt97_h"),
                [=](sl::group<1> g) {
                    float scratch[4096];
                    g.parallel_for_work_item([&](sl::h_item<1> it) {
                        const std::size_t row =
                            g.get_group_id(0) * 64 + it.get_local_id(0);
                        if (row < rows)
                            fdwt97_1d(&a[row * pitch], len, 1, scratch);
                    });
                });
        });
        q.submit([&](sl::handler& h2) {  // vertical pass: one item per column
            auto a = h2.get_access(img, sl::access_mode::read_write);
            const std::size_t cols = w, len = h, pitch = p.width;
            h2.parallel_for_work_group(
                sl::range<1>(cols / 64 + (cols % 64 ? 1 : 0)), sl::range<1>(64),
                detail::stats_pass(p, cfg.variant, dev, cols, len, "fdwt97_v"),
                [=](sl::group<1> g) {
                    float scratch[4096];
                    g.parallel_for_work_item([&](sl::h_item<1> it) {
                        const std::size_t col =
                            g.get_group_id(0) * 64 + it.get_local_id(0);
                        if (col < cols)
                            fdwt97_1d(&a[col], len, pitch, scratch);
                    });
                });
        });
        w /= 2;
        h /= 2;
    }
    q.wait();

    std::vector<float> got(p.pixels());
    q.copy_from_device(img, got.data());
    const double err = max_rel_error<float>(expected, got);
    require_close(err, 1e-4, "dwt2d");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

void register_app() {
    register_standard_app(
        "dwt2d", "2D CDF 9/7 forward wavelet transform (3 levels)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base},
        &run);
}

}  // namespace altis::apps::dwt2d
