file(REMOVE_RECURSE
  "CMakeFiles/ablation_fpga_knobs.dir/ablation_fpga_knobs.cpp.o"
  "CMakeFiles/ablation_fpga_knobs.dir/ablation_fpga_knobs.cpp.o.d"
  "ablation_fpga_knobs"
  "ablation_fpga_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fpga_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
