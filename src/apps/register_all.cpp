#include "apps/common/app.hpp"

namespace altis::apps {

namespace cfd { void register_apps(); }
namespace dwt2d { void register_app(); }
namespace fdtd2d { void register_app(); }
namespace kmeans { void register_app(); }
namespace lavamd { void register_app(); }
namespace mandelbrot { void register_app(); }
namespace nw { void register_app(); }
namespace particlefilter { void register_apps(); }
namespace raytracing { void register_app(); }
namespace srad { void register_app(); }
namespace where { void register_app(); }

void register_all_apps() {
    // Registration order matches Table 1 (CFD first, Where last).
    static const bool done = [] {
        cfd::register_apps();
        dwt2d::register_app();
        fdtd2d::register_app();
        kmeans::register_app();
        lavamd::register_app();
        mandelbrot::register_app();
        nw::register_app();
        particlefilter::register_apps();
        raytracing::register_app();
        srad::register_app();
        where::register_app();
        return true;
    }();
    (void)done;
}

}  // namespace altis::apps
