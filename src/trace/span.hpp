// Typed spans on the simulated timeline. A span is one interval of simulated
// time attributed to a cause: a named kernel, a PCIe transfer, runtime
// bookkeeping, one-time setup, a host sync, a dataflow group's wall-clock
// envelope, or a top-level timed region. Kernel spans carry the counters the
// perf models derived for them (modeled FLOPs, bytes, occupancy, II,
// divergence) so exported traces explain *why* a span is as long as it is,
// not just how long it is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace altis::trace {

enum class span_kind {
    kernel,          ///< one kernel execution (or an aggregated slot)
    transfer,        ///< host<->device PCIe payload
    overhead,        ///< launch/runtime bookkeeping, library-internal costs
    setup,           ///< one-time context/JIT setup inside a timed region
    sync,            ///< host-side synchronization (queue::wait)
    dataflow_group,  ///< wall-clock envelope of concurrently-running kernels
    region,          ///< application timed region (top-level)
};

[[nodiscard]] const char* to_string(span_kind k);

/// Failure flag for spans: operations hit by fault injection (or real
/// errors) are marked `failed`; a successful re-attempt after a retryable
/// fault is marked `retried`. Configurations the resilience supervisor cut
/// short carry `cancelled` (deadline expiry or SIGINT/SIGTERM) and
/// breaker-skipped ones carry `quarantined`. Exporters surface the flag so
/// timelines show exactly where injections and cancellations landed.
enum class span_status {
    ok,
    failed,
    retried,
    cancelled,
    quarantined,
};

[[nodiscard]] const char* to_string(span_status s);

/// Model-derived counters attached to kernel spans (zero elsewhere).
struct span_counters {
    double flops = 0.0;       ///< total modeled FP ops (FP32+FP64+SFU)
    double bytes = 0.0;       ///< total modeled global-memory traffic
    double occupancy = 0.0;   ///< GPU SM occupancy fraction, 0 when n/a
    double divergence = 0.0;  ///< SIMD divergence fraction
    int initiation_interval = 0;  ///< worst achieved II (single-task), 0 n/a
    /// How many launches this span aggregates. The functional path emits one
    /// span per submission (1); the region simulator folds a slot's `count`
    /// repetitions into one span, so aggregate math stays exact without
    /// emitting thousands of identical events.
    double invocations = 1.0;
};

struct span {
    span_kind kind = span_kind::overhead;
    std::string name;       ///< kernel name; empty/role name otherwise
    double start_ns = 0.0;  ///< simulated clock
    double end_ns = 0.0;
    /// Timeline lane. 0 is the main sequential lane; dataflow kernels are
    /// placed on lanes 1..N so exported traces show them overlapping
    /// (paper Fig. 3). Lanes are reused by successive groups.
    int track = 0;
    span_status status = span_status::ok;
    span_counters counters;
    /// Graph command id of this span (out-of-order queues; 0 = not a graph
    /// command). Stable within a session; the chrome exporter uses it to
    /// anchor Perfetto flow arrows between dependent commands.
    std::uint64_t cmd = 0;
    /// Graph command ids this command depends on (explicit depends_on plus
    /// accessor-implied edges). Empty for in-order spans.
    std::vector<std::uint64_t> deps;

    [[nodiscard]] double duration_ns() const { return end_ns - start_ns; }
};

}  // namespace altis::trace
