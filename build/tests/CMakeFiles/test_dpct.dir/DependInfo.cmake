
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dpct/test_dpct.cpp" "tests/CMakeFiles/test_dpct.dir/dpct/test_dpct.cpp.o" "gcc" "tests/CMakeFiles/test_dpct.dir/dpct/test_dpct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/altis_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/altis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/altis_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sycl/CMakeFiles/altis_syclite.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/altis_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/altis_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/dpct/CMakeFiles/altis_dpct.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
