#include "resilience/breaker.hpp"

namespace altis::resilience {

bool breaker::admit(const std::string& key) {
    if (!policy_.enabled()) return true;
    entry& e = keys_[key];
    switch (e.st) {
        case state::closed:
        case state::half_open:
            return true;
        case state::open:
            // The probe comes only after `cooldown` encounters have been
            // quarantined, as documented in breaker.hpp.
            if (e.skipped_since >= policy_.cooldown) {
                e.st = state::half_open;
                return true;  // the probe
            }
            ++e.skipped_since;
            return false;
    }
    return true;
}

void breaker::report(const std::string& key, bool hard_failure) {
    if (!policy_.enabled()) return;
    entry& e = keys_[key];
    if (!hard_failure) {
        e.st = state::closed;
        e.consecutive = 0;
        e.skipped_since = 0;
        return;
    }
    ++e.consecutive;
    if (e.st == state::half_open || e.consecutive >= policy_.threshold) {
        e.st = state::open;
        e.skipped_since = 0;
    }
}

breaker::state breaker::state_of(const std::string& key) const {
    const auto it = keys_.find(key);
    return it == keys_.end() ? state::closed : it->second.st;
}

int breaker::consecutive_failures(const std::string& key) const {
    const auto it = keys_.find(key);
    return it == keys_.end() ? 0 : it->second.consecutive;
}

}  // namespace altis::resilience
