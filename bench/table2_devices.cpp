// Regenerates Table 2: the employed accelerator devices with process node,
// compute units, peak FP32 and peak memory bandwidth. For the FPGAs the
// peak *attainable* range is computed with the paper's formula
// Peak FP32 = N_dsp x 2 x F over the achieved kernel-frequency range.
#include <iostream>
#include <sstream>

#include "core/report.hpp"
#include "perf/device.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("table2_devices");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    namespace perf = altis::perf;

    std::cout << "Table 2: Employed Accelerator Devices (simulated models)\n\n";
    Table t({"Device", "Process [nm]", "# Compute Units", "Peak FP32 [TFLOP/s]",
             "Peak Mem. BW [GB/s]"});
    for (const auto& d : perf::device_catalog()) {
        if (d.name == "agilex_hbm") continue;  // Sec. 6 projection, not in Table 2
        std::string units;
        std::string peak;
        switch (d.kind) {
            case perf::device_kind::cpu:
                units = std::to_string(d.compute_units) + " Cores";
                peak = Table::num(d.peak_fp32_tflops, 1);
                break;
            case perf::device_kind::gpu:
                units = std::to_string(d.compute_units) +
                        (d.name == "max_1100" ? " Xe-cores" : " SMs");
                peak = Table::num(d.peak_fp32_tflops, 1);
                break;
            case perf::device_kind::fpga: {
                units = std::to_string(d.compute_units) + " DSPs (user logic)";
                std::ostringstream os;
                os << Table::num(d.fpga_peak_fp32_tflops(d.fmin_mhz), 1) << " ("
                   << Table::num(d.fmin_mhz, 0) << " MHz) - "
                   << Table::num(d.fpga_peak_fp32_tflops(d.fmax_mhz), 1) << " ("
                   << Table::num(d.fmax_mhz, 0) << " MHz)";
                peak = os.str();
                break;
            }
        }
        t.add_row({d.display, std::to_string(d.process_nm), units, peak,
                   Table::num(d.mem_bw_gbs, 1)});
    }
    t.print(std::cout);

    std::cout << "\nPaper reference: FPGA peak attainable 2.4-4.2 TFLOP/s "
                 "(Stratix 10), 2.3-5.0 TFLOP/s (Agilex).\n";
    return trace_harness.finish();
}
