// Model descriptors for ParticleFilter. The CUDA PF Float carries pow(a,2)
// as SFU work (Sec. 3.3); the migrated SYCL carries a*a as plain FP32. The
// FPGA design is a branch-heavy Single-Task kernel that closes timing around
// 105 MHz (Table 3) and leans on compute-unit replication (Sec. 5.5).
#include "apps/particlefilter/particlefilter.hpp"

#include <algorithm>
#include <cmath>

namespace altis::apps::particlefilter {
namespace detail {

namespace {
constexpr double kDiskPoints = 49.0;  // radius-4 disk

struct tuning {
    int frame_cus;   // likelihood/propagate datapath replication
    int search_cus;  // resampling search replication
};

// Sec. 5.5: 10x -> 4x and 50x -> 24x for both PF flavours.
tuning fpga_tuning(const perf::device_spec& dev) {
    return dev.name == "stratix_10" ? tuning{10, 50} : tuning{4, 24};
}
}  // namespace

perf::kernel_stats stats_propagate(const params& p, flavor f, Variant v,
                                   const perf::device_spec& dev,
                                   bool cuda_pow_fixed) {
    (void)dev;
    perf::kernel_stats k;
    k.name = "pf_propagate_likelihood";
    k.global_items = static_cast<double>(p.particles);
    k.wg_size = 128;
    if (f == flavor::naive) {
        // The naive Rodinia version computes in double precision.
        k.fp64_ops = 40.0 + kDiskPoints * 6.0;
    } else {
        k.fp32_ops = 40.0 + kDiskPoints * 6.0;
    }
    k.sfu_ops = 6.0;  // gaussian draws: log, cos, sqrt
    // The original CUDA PF Float calls pow(a,2)/pow(b,2) per disk point.
    // General powf expands to an exp/log sequence of ~140 FP-op equivalents,
    // which is the whole 6x of Sec. 3.3; DPCT's a*a is one multiply.
    if (f == flavor::floatopt && v == Variant::cuda && !cuda_pow_fixed) {
        k.fp32_ops += 2.0 * kDiskPoints * 140.0;
        k.pow_const_exp_ops = 2.0 * kDiskPoints;  // lint rule ALS-L1
    }
    k.int_ops = 30.0 + kDiskPoints * 4.0;
    k.bytes_read = kDiskPoints * 1.0 + 12.0;
    k.bytes_written = 12.0;
    k.divergence = 0.35;  // clamped video reads, disk mask branches
    // The disk double-loop iterates serially per item on an FPGA datapath.
    k.dep_chain_cycles = kDiskPoints * 2.0;
    k.static_fp32_ops = 40;
    k.static_int_ops = 60;
    k.static_branches = 18;
    k.accessor_args = 5;
    k.control_complexity = 7;
    return k;
}

perf::kernel_stats stats_reduce(const params& p) {
    perf::kernel_stats k;
    k.name = "pf_weight_reduce";
    k.global_items = std::max(1.0, static_cast<double>(p.particles) / 256.0);
    k.wg_size = 1;
    k.fp32_ops = 256.0;
    k.bytes_read = 256.0 * 4.0;
    k.bytes_written = 4.0;
    k.barriers = 1.0;
    k.pattern = perf::local_pattern::scalar;  // register accumulator
    k.static_fp32_ops = 2;
    k.static_int_ops = 6;
    k.accessor_args = 2;
    k.control_complexity = 2;
    return k;
}

perf::kernel_stats stats_normalize(const params& p) {
    perf::kernel_stats k;
    k.name = "pf_normalize_estimate";
    k.global_items = static_cast<double>(p.particles);
    k.wg_size = 256;
    k.fp32_ops = 5.0;
    k.bytes_read = 12.0;
    k.bytes_written = 12.0;
    k.static_fp32_ops = 5;
    k.static_int_ops = 8;
    k.accessor_args = 4;
    k.control_complexity = 1;
    return k;
}

perf::kernel_stats stats_cdf(const params& p) {
    perf::kernel_stats k;
    k.name = "pf_cdf";
    k.form = perf::kernel_form::single_task;  // serial scan over weights
    k.bytes_read = static_cast<double>(p.particles) * 4.0;
    k.bytes_written = static_cast<double>(p.particles) * 4.0;
    k.static_fp32_ops = 1;
    k.static_int_ops = 4;
    k.accessor_args = 2;
    k.control_complexity = 2;
    perf::loop_info loop;
    loop.trip_count = static_cast<double>(p.particles);
    loop.initiation_interval = 1;
    k.loops.push_back(loop);
    return k;
}

perf::kernel_stats stats_resample(const params& p, flavor f, Variant v,
                                  const perf::device_spec& dev) {
    (void)v;
    (void)dev;
    perf::kernel_stats k;
    k.name = "pf_find_index";
    k.global_items = static_cast<double>(p.particles);
    k.wg_size = 128;
    const double n = static_cast<double>(p.particles);
    // Naive linear-searches the CDF (expected depth n/2, the O(N^2) of the
    // flavour's name); the float-optimized version bisects.
    const double depth = f == flavor::naive ? n / 2.0 : std::log2(n) + 1.0;
    k.fp32_ops = depth;
    k.int_ops = depth * 3.0;
    k.bytes_read = depth * 4.0 / 8.0 + 8.0;  // CDF mostly cached
    k.bytes_written = 8.0;
    k.divergence = 0.6;  // data-dependent exit
    // On an FPGA the search loop iterates serially per work-item.
    k.dep_chain_cycles = depth;
    k.static_fp32_ops = 2;
    k.static_int_ops = 20;
    k.static_branches = 10;
    k.accessor_args = 4;
    k.control_complexity = 8;
    return k;
}

perf::kernel_stats stats_frame_st(const params& p, flavor f,
                                  const perf::device_spec& dev) {
    perf::kernel_stats k;
    k.name = f == flavor::naive ? "pf_naive_frame_st" : "pf_float_frame_st";
    k.form = perf::kernel_form::single_task;
    const double n = static_cast<double>(p.particles);
    k.bytes_read = n * (kDiskPoints + 24.0);
    k.bytes_written = n * 24.0;
    k.args_restrict = true;
    k.accessor_args = 6;
    k.static_fp32_ops = 60;
    k.static_int_ops = 90;
    k.static_branches = 30;
    // The branch-heavy SIR control flow is the paper's lowest-Fmax design:
    // ~105 MHz on both boards (Table 3).
    k.control_complexity = 9;

    const tuning t = fpga_tuning(dev);
    perf::loop_info work;
    work.name = "propagate_likelihood";
    work.trip_count = n * kDiskPoints;
    work.entries = n;
    work.initiation_interval = 1;
    work.unroll = t.frame_cus;  // replicated likelihood datapaths
    work.speculated_iterations = 2;
    k.loops.push_back(work);

    perf::loop_info search;
    search.name = "resample_search";
    search.trip_count =
        f == flavor::naive ? n * n / 2.0 : n * (std::log2(n) + 1.0);
    search.entries = n;
    // [[intel::speculated_iterations]] pulls the CDF-compare exit off the
    // critical path, keeping II = 1 (Sec. 5.3).
    search.initiation_interval = 1;
    search.unroll = t.search_cus;  // replicated search units
    search.speculated_iterations = 4;
    k.loops.push_back(search);
    return k;
}

}  // namespace detail

namespace {

timed_region make_region(flavor f, Variant v, const perf::device_spec& dev,
                         int size, bool cuda_pow_fixed);

}  // namespace

timed_region region(flavor f, Variant v, const perf::device_spec& dev,
                    int size) {
    return make_region(f, v, dev, size, /*cuda_pow_fixed=*/false);
}

timed_region region_cuda_pow_fixed(flavor f, const perf::device_spec& dev,
                                   int size) {
    return make_region(f, Variant::cuda, dev, size, /*cuda_pow_fixed=*/true);
}

namespace {

timed_region make_region(flavor f, Variant v, const perf::device_spec& dev,
                         int size, bool cuda_pow_fixed) {
    const params p = params::preset(size, f);
    timed_region r;
    r.name = std::string("particlefilter/") + to_string(v) + "/size" + std::to_string(size);
    r.include_setup = false;  // timed region excludes one-time setup (warm-up)
    r.transfer_bytes = static_cast<double>(p.frames) * p.grid * p.grid +
                       static_cast<double>(p.frames) * 8.0;
    r.transfer_calls = 1.0 + static_cast<double>(p.frames);
    r.syncs = static_cast<double>(p.frames);
    const double frames = static_cast<double>(p.frames);
    if (v == Variant::fpga_opt) {
        r.kernels.push_back({detail::stats_frame_st(p, f, dev), frames});
    } else {
        r.kernels.push_back(
            {detail::stats_propagate(p, f, v, dev, cuda_pow_fixed), frames});
        r.kernels.push_back({detail::stats_reduce(p), frames});
        r.kernels.push_back({detail::stats_normalize(p), frames});
        r.kernels.push_back({detail::stats_cdf(p), frames});
        r.kernels.push_back({detail::stats_resample(p, f, v, dev), frames});
    }
    return r;
}

}  // namespace

std::vector<perf::kernel_stats> fpga_design(flavor f,
                                            const perf::device_spec& dev,
                                            int size) {
    return {detail::stats_frame_st(params::preset(size, f), f, dev)};
}

}  // namespace altis::apps::particlefilter
