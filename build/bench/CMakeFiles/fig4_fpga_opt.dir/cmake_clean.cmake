file(REMOVE_RECURSE
  "CMakeFiles/fig4_fpga_opt.dir/fig4_fpga_opt.cpp.o"
  "CMakeFiles/fig4_fpga_opt.dir/fig4_fpga_opt.cpp.o.d"
  "fig4_fpga_opt"
  "fig4_fpga_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_fpga_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
