file(REMOVE_RECURSE
  "CMakeFiles/device_explorer.dir/device_explorer.cpp.o"
  "CMakeFiles/device_explorer.dir/device_explorer.cpp.o.d"
  "device_explorer"
  "device_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
