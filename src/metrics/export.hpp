// Exporters for a finished (or running) metrics session. Three formats:
//
//   * Prometheus text exposition (write_prometheus): one # HELP/# TYPE block
//     per metric family, log-bucketed histograms as cumulative _bucket
//     series with `le` labels, label values escaped per the exposition
//     format spec (backslash, double-quote, newline).
//   * Structured JSON (write_json): the snapshot plus the sampler's time
//     series, following the suite's hand-rolled-emitter conventions
//     (ResultDatabase, chrome_export) so tests/support/mini_json.hpp can
//     parse it back.
//   * Chrome trace-event counter tracks (write_chrome_counter_events):
//     "ph":"C" events that trace::write_chrome_json splices into its
//     traceEvents array, so simulated spans and wall-clock counters render
//     on one Perfetto timeline.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/session.hpp"

namespace altis::metrics {

void write_prometheus(const snapshot& snap, std::ostream& out);

void write_json(const snapshot& snap,
                const std::vector<sampled_series>& series, std::ostream& out);

/// Appends counter events to an already-open Chrome trace-event array.
/// `first` follows the chrome_export comma protocol: false when events were
/// already written (a comma is emitted before each event), updated in place.
void write_chrome_counter_events(const std::vector<sampled_series>& series,
                                 std::ostream& out, bool& first);

/// Escapes a Prometheus label value: `\` -> `\\`, `"` -> `\"`, newline ->
/// `\n` (exposed for the escaping tests).
[[nodiscard]] std::string escape_label_value(const std::string& v);

}  // namespace altis::metrics
