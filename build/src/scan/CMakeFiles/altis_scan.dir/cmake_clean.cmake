file(REMOVE_RECURSE
  "CMakeFiles/altis_scan.dir/scan.cpp.o"
  "CMakeFiles/altis_scan.dir/scan.cpp.o.d"
  "libaltis_scan.a"
  "libaltis_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
