#include "metrics/registry.hpp"

#include "metrics/alloc_ledger.hpp"

namespace altis::metrics {

const char* to_string(instrument_kind k) {
    switch (k) {
        case instrument_kind::counter: return "counter";
        case instrument_kind::gauge: return "gauge";
        case instrument_kind::watermark: return "watermark";
        case instrument_kind::histogram: return "histogram";
    }
    return "?";
}

registry& registry::instance() {
    static registry r;
    return r;
}

std::string registry::key_of(const std::string& name, const label_set& labels) {
    std::string key = name;
    for (const auto& [k, v] : labels) {
        // '\x1f' cannot appear in metric/label names, so the key is
        // unambiguous without escaping.
        key += '\x1f';
        key += k;
        key += '\x1f';
        key += v;
    }
    return key;
}

// Find-or-create below is a linear scan: registration happens a few dozen
// times per process, always on the cold path, so a map would buy nothing.

counter& registry::get_counter(const std::string& name, const std::string& help,
                               label_set labels) {
    const std::string key = key_of(name, labels);
    std::lock_guard lock(mutex_);
    for (const entry& e : entries_)
        if (e.info.kind == instrument_kind::counter &&
            key_of(e.info.name, e.info.labels) == key)
            return const_cast<counter&>(*e.info.ctr);
    counter& c = counters_.emplace_back();
    entry e;
    e.info.name = name;
    e.info.help = help;
    e.info.kind = instrument_kind::counter;
    e.info.labels = std::move(labels);
    e.info.ctr = &c;
    entries_.push_back(std::move(e));
    return c;
}

gauge& registry::get_gauge(const std::string& name, const std::string& help,
                           label_set labels) {
    const std::string key = key_of(name, labels);
    std::lock_guard lock(mutex_);
    for (const entry& e : entries_)
        if (e.info.kind == instrument_kind::gauge &&
            key_of(e.info.name, e.info.labels) == key)
            return const_cast<gauge&>(*e.info.gge);
    gauge& g = gauges_.emplace_back();
    entry e;
    e.info.name = name;
    e.info.help = help;
    e.info.kind = instrument_kind::gauge;
    e.info.labels = std::move(labels);
    e.info.gge = &g;
    entries_.push_back(std::move(e));
    return g;
}

watermark& registry::get_watermark(const std::string& name,
                                   const std::string& help, label_set labels) {
    const std::string key = key_of(name, labels);
    std::lock_guard lock(mutex_);
    for (const entry& e : entries_)
        if (e.info.kind == instrument_kind::watermark &&
            key_of(e.info.name, e.info.labels) == key)
            return const_cast<watermark&>(*e.info.wmk);
    watermark& w = watermarks_.emplace_back();
    entry e;
    e.info.name = name;
    e.info.help = help;
    e.info.kind = instrument_kind::watermark;
    e.info.labels = std::move(labels);
    e.info.wmk = &w;
    entries_.push_back(std::move(e));
    return w;
}

histogram& registry::get_histogram(const std::string& name,
                                   const std::string& help, label_set labels) {
    const std::string key = key_of(name, labels);
    std::lock_guard lock(mutex_);
    for (const entry& e : entries_)
        if (e.info.kind == instrument_kind::histogram &&
            key_of(e.info.name, e.info.labels) == key)
            return const_cast<histogram&>(*e.info.hst);
    histogram& h = histograms_.emplace_back();
    entry e;
    e.info.name = name;
    e.info.help = help;
    e.info.kind = instrument_kind::histogram;
    e.info.labels = std::move(labels);
    e.info.hst = &h;
    entries_.push_back(std::move(e));
    return h;
}

std::vector<instrument_info> registry::instruments() const {
    std::lock_guard lock(mutex_);
    std::vector<instrument_info> out;
    out.reserve(entries_.size());
    for (const entry& e : entries_) out.push_back(e.info);
    return out;
}

void registry::reset_all() {
    std::vector<std::function<void()>> hooks;
    {
        std::lock_guard lock(mutex_);
        for (counter& c : counters_) c.reset();
        for (gauge& g : gauges_) g.reset();
        for (watermark& w : watermarks_) w.reset();
        for (histogram& h : histograms_) h.reset();
        hooks = reset_hooks_;
    }
    alloc_ledger::instance().clear();
    detail::g_epoch.fetch_add(1, std::memory_order_relaxed);
    // Outside the lock: hooks call get_gauge() to re-seed levels.
    for (const auto& fn : hooks) fn();
}

void registry::add_reset_hook(std::function<void()> fn) {
    std::lock_guard lock(mutex_);
    reset_hooks_.push_back(std::move(fn));
}

}  // namespace altis::metrics
