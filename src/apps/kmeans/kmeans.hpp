// KMeans: Lloyd clustering (Altis Level-2, data-mining workload). Paper
// roles: the headline pipe/dataflow optimization of Fig. 3 -- the baseline
// FPGA design launches mapCenters/reset/accumulate/finalize per iteration
// through global memory; the optimized design fuses reset+accumulate+
// finalize into `resetAccFin`, streams every point's mapping through a pipe
// and feeds the new centers back through a second pipe, for a ~510x speedup
// (Fig. 4) -- and the Single-Task implementation row of Table 3.
#pragma once

#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::kmeans {

struct params {
    std::size_t n = 4096;   ///< points
    std::size_t d = 8;      ///< features per point
    std::size_t k = 8;      ///< clusters
    int iterations = 150;   ///< fixed Lloyd iterations (Altis-style max)
    std::uint64_t seed = 0xC1D2ULL;

    [[nodiscard]] static params preset(int size);
};

struct dataset {
    std::vector<float> points;           ///< n x d row-major
    std::vector<float> initial_centers;  ///< k x d (first k points)
};

struct clustering {
    std::vector<float> centers;  ///< k x d
    std::vector<int> assignment; ///< n
};

/// Deterministic synthetic dataset: k Gaussian-ish blobs.
[[nodiscard]] dataset make_dataset(const params& p);

/// Host reference Lloyd iterations (sequential accumulation order -- the
/// same order the Single-Task FPGA kernels use).
[[nodiscard]] clustering golden(const params& p, const dataset& data);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "Single-Task";

void register_app();

}  // namespace altis::apps::kmeans
