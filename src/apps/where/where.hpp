// Where: record filtering for data analytics (Altis Level-2). Selects the
// records of a table matching a predicate, using the classic mark -> prefix
// sum -> scatter pipeline. Paper roles: the oneDPL prefix-sum being 50%
// slower than CUDA's on the RTX 2080 (Sec. 3.3, the only app whose GPU
// speedup stays at ~0.3x), the custom Single-Task FPGA scan of Listing 2
// (Sec. 5.3), compute-unit replication retuning 2x->4x and 20x->25x between
// Stratix 10 and Agilex (Sec. 5.5), and the documented size-3 crash on
// Agilex (Fig. 5 omits those bars).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::where {

struct record {
    std::int32_t key = 0;
    std::int32_t payload = 0;
    friend bool operator==(const record&, const record&) = default;
};

struct params {
    std::size_t n = 1 << 20;
    std::int32_t threshold = 0;  ///< select records with key < threshold
    std::uint64_t seed = 0x5eedULL;

    [[nodiscard]] static params preset(int size);
};

/// Deterministic synthetic table (keys uniform in [0, 2^20)).
[[nodiscard]] std::vector<record> make_table(const params& p);

/// Host reference: records matching key < threshold, in input order.
[[nodiscard]] std::vector<record> golden(const params& p,
                                         std::span<const record> table);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range & Single-Task";

/// Sec. 5.5: Where with size 3 crashes on Agilex. Exposed so harnesses can
/// report the failure instead of a number, as the paper does.
[[nodiscard]] bool crashes_on(const perf::device_spec& dev, Variant v, int size);

void register_app();

}  // namespace altis::apps::where
