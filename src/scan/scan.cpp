#include "scan/scan.hpp"

#include <stdexcept>
#include <vector>

namespace altis::scan {

void exclusive_scan_serial(std::span<const int> in, std::span<int> out) {
    if (out.size() < in.size())
        throw std::invalid_argument("exclusive_scan_serial: output too small");
    int acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        const int v = in[i];  // read before write: out may alias in
        out[i] = acc;
        acc += v;
    }
}

void inclusive_scan_serial(std::span<const int> in, std::span<int> out) {
    if (out.size() < in.size())
        throw std::invalid_argument("inclusive_scan_serial: output too small");
    int acc = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        acc += in[i];
        out[i] = acc;
    }
}

void exclusive_scan_blocked(std::span<const int> in, std::span<int> out,
                            syclite::thread_pool& pool, std::size_t block) {
    if (out.size() < in.size())
        throw std::invalid_argument("exclusive_scan_blocked: output too small");
    const std::size_t n = in.size();
    if (n == 0) return;
    if (in.data() == out.data())
        throw std::invalid_argument("exclusive_scan_blocked: in-place scan "
                                    "is not supported");
    const std::size_t nblocks = (n + block - 1) / block;

    // Phase 1: exclusive scan inside each block, collect block sums.
    std::vector<int> block_sums(nblocks);
    pool.parallel_for(nblocks, [&](std::size_t b) {
        const std::size_t begin = b * block;
        const std::size_t end = std::min(begin + block, n);
        int acc = 0;
        for (std::size_t i = begin; i < end; ++i) {
            const int v = in[i];
            out[i] = acc;
            acc += v;
        }
        block_sums[b] = acc;
    });

    // Phase 2: serial exclusive scan of the block sums.
    exclusive_scan_serial(block_sums, block_sums);

    // Phase 3: add each block's offset.
    pool.parallel_for(nblocks, [&](std::size_t b) {
        const int offset = block_sums[b];
        const std::size_t begin = b * block;
        const std::size_t end = std::min(begin + block, n);
        for (std::size_t i = begin; i < end; ++i) out[i] += offset;
    });
}

void exclusive_scan_fpga_custom(std::span<const int> results,
                                std::span<int> prefix) {
    if (prefix.size() < results.size())
        throw std::invalid_argument("exclusive_scan_fpga_custom: output too small");
    if (results.empty()) return;
    // Listing 2 verbatim: prefix[0] = 0; prefix[i] = prefix[i-1] + results[i].
    // (This is an exclusive scan of the sequence shifted by one element; the
    // Where kernel feeds `results` shifted accordingly.)
    prefix[0] = 0;
    for (std::size_t i = 1; i < results.size(); ++i)
        prefix[i] = prefix[i - 1] + results[i];
}

perf::kernel_stats stats_scan_cuda(std::size_t n) {
    perf::kernel_stats k;
    k.name = "scan_cub";
    k.library = true;  // opaque CUB call (only ever scheduled on GPUs)
    k.form = perf::kernel_form::nd_range;
    k.global_items = static_cast<double>(n);
    k.wg_size = 256;
    // Decoupled-lookback scan: ~2 passes over the data.
    k.int_ops = 6.0;
    k.bytes_read = 4.0 * 1.6;
    k.bytes_written = 4.0 * 1.0;
    k.barriers = 2.0 * 1.0;
    k.static_int_ops = 24;
    k.static_branches = 6;
    k.accessor_args = 2;
    return k;
}

perf::kernel_stats stats_scan_onedpl(std::size_t n) {
    perf::kernel_stats k = stats_scan_cuda(n);
    k.name = "scan_onedpl";
    k.library = true;  // opaque oneDPL call; lint rule ALS-L4 on FPGAs
    // Three-phase scan without decoupled lookback: ~3 passes plus extra
    // bookkeeping -- calibrated to the paper's "50% slower than CUDA's".
    k.int_ops = 10.0;
    k.bytes_read = 4.0 * 2.4;
    k.bytes_written = 4.0 * 1.5;
    k.barriers = 3.0;
    // GPU-shaped local-memory tree scan: on FPGAs its irregular strides force
    // arbiters, one reason the custom Single-Task scan wins there (Sec. 5.3).
    k.pattern = perf::local_pattern::congested;
    k.local_arrays = 1;
    k.local_mem_bytes = 256 * 4;
    k.local_accesses = 24.0;  // up/down-sweep tree: log2(wg) strided rounds
    k.dynamic_local_size = true;
    return k;
}

perf::kernel_stats stats_scan_fpga_custom(std::size_t n) {
    perf::kernel_stats k;
    k.name = "scan_fpga_custom";
    k.form = perf::kernel_form::single_task;
    k.global_items = 1.0;
    k.wg_size = 1.0;
    k.bytes_read = 4.0 * static_cast<double>(n);
    k.bytes_written = 4.0 * static_cast<double>(n);
    k.args_restrict = true;  // [[intel::kernel_args_restrict]] in Listing 2
    k.accessor_args = 2;
    k.static_int_ops = 6;
    k.static_branches = 1;
    k.control_complexity = 1;
    perf::loop_info loop;
    loop.name = "scan";
    loop.trip_count = static_cast<double>(n) / 1.0;
    loop.entries = 1.0;
    loop.initiation_interval = 1;  // the loop-carried add closes in one cycle
    loop.speculated_iterations = 2;
    loop.unroll = 2;  // #pragma unroll 2 in Listing 2
    k.loops.push_back(loop);
    return k;
}

}  // namespace altis::scan
