#include "apps/cfd/cfd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/model.hpp"

namespace altis::apps::cfd {
namespace {

TEST(Cfd, MeshTopologyIsConsistent) {
    const params p = params::preset(1);
    const mesh m = make_mesh(p);
    ASSERT_EQ(m.neighbors.size(), p.nel() * kNeighbors);
    for (std::size_t e = 0; e < p.nel(); ++e)
        for (int f = 0; f < kNeighbors; ++f) {
            const int nb = m.neighbors[e * kNeighbors + static_cast<std::size_t>(f)];
            ASSERT_GE(nb, -1);
            ASSERT_LT(nb, static_cast<int>(p.nel()));
        }
    // Interior element neighbor symmetry: east(e) == e+1, west(e+1) == e.
    const std::size_t e = p.nx + 1;  // interior
    EXPECT_EQ(m.neighbors[e * kNeighbors + 1], static_cast<int>(e + 1));
    EXPECT_EQ(m.neighbors[(e + 1) * kNeighbors + 0], static_cast<int>(e));
}

TEST(Cfd, GoldenStaysFiniteAndConservesMassApproximately) {
    params p{32, 32, 20};
    const mesh m = make_mesh(p);
    auto vars = initial_variables<float>(p);
    const std::size_t nel = p.nel();
    double mass_before = 0.0;
    for (std::size_t e = 0; e < nel; ++e) mass_before += vars[e];
    golden(p, m, vars);
    double mass_after = 0.0;
    for (std::size_t e = 0; e < nel; ++e) {
        ASSERT_TRUE(std::isfinite(vars[e]));
        ASSERT_GT(vars[e], 0.0f);  // density stays positive
        mass_after += vars[e];
    }
    // Open far-field boundaries leak a little; it must stay bounded.
    EXPECT_NEAR(mass_after / mass_before, 1.0, 0.05);
}

TEST(Cfd, Fp64GoldenMatchesFp32Loosely) {
    params p{16, 16, 10};
    const mesh m = make_mesh(p);
    auto v32 = initial_variables<float>(p);
    auto v64 = initial_variables<double>(p);
    golden(p, m, v32);
    golden(p, m, v64);
    for (std::size_t i = 0; i < v32.size(); ++i)
        EXPECT_NEAR(static_cast<double>(v32[i]), v64[i], 1e-3);
}

struct Case {
    const char* device;
    Variant variant;
    bool fp64;
};

class CfdVariants : public ::testing::TestWithParam<Case> {};

TEST_P(CfdVariants, FunctionalRunVerifies) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = GetParam().device;
    cfg.variant = GetParam().variant;
    const AppResult r =
        GetParam().fp64 ? run_fp64(cfg) : run_fp32(cfg);
    EXPECT_GT(r.kernel_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndVariants, CfdVariants,
    ::testing::Values(Case{"rtx_2080", Variant::cuda, false},
                      Case{"rtx_2080", Variant::cuda, true},
                      Case{"a100", Variant::sycl_opt, false},
                      Case{"max_1100", Variant::sycl_opt, true},
                      Case{"stratix_10", Variant::fpga_base, false},
                      Case{"stratix_10", Variant::fpga_opt, false},
                      Case{"agilex", Variant::fpga_opt, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
        return std::string(info.param.device) + "_" +
               to_string(info.param.variant) +
               (info.param.fp64 ? "_fp64" : "_fp32");
    });

// Fig. 5's FP64 story: on CFD FP64 the RTX 2080 (1:32 FP64) loses its edge
// over the CPU, while A100 (1:2) and Max 1100 (1:1) keep theirs.
TEST(Cfd, Fp64PenaltyReordersDevices) {
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto& a100 = perf::device_by_name("a100");
    const auto& cpu = perf::device_by_name("xeon_6128");
    auto total = [&](bool fp64, const perf::device_spec& d) {
        return simulate_region(region(fp64, Variant::sycl_opt, d, 3), d,
                               perf::runtime_kind::sycl)
            .kernel_ms();
    };
    const double rtx_drop = total(true, rtx) / total(false, rtx);
    const double a100_drop = total(true, a100) / total(false, a100);
    EXPECT_GT(rtx_drop, a100_drop * 1.5);  // Turing hurts much more
    // RTX 2080's advantage over the CPU shrinks under FP64.
    const double rtx_adv_32 = total(false, cpu) / total(false, rtx);
    const double rtx_adv_64 = total(true, cpu) / total(true, rtx);
    EXPECT_LT(rtx_adv_64, rtx_adv_32 * 0.7);
}

// Sec. 5.1: FP64 kernels only replicate twice (resource-bound).
TEST(Cfd, Fp64ReplicationLimitedToTwo) {
    const auto& s10 = perf::device_by_name("stratix_10");
    for (const auto& k : fpga_design(true, s10, 1))
        EXPECT_LE(k.replication, 2);
    // And the FP32 design uses 4x on S10, 8x on Agilex (Sec. 5.5).
    EXPECT_EQ(fpga_design(false, s10, 1)[2].replication, 4);
    EXPECT_EQ(fpga_design(false, perf::device_by_name("agilex"), 1)[2].replication,
              8);
}

// Sec. 5.2: CFD FP32 performance only scales up to SIMD = 2.
TEST(Cfd, SimdScalingCapsAtTwo) {
    const auto& s10 = perf::device_by_name("stratix_10");
    auto flux = fpga_design(false, s10, 3)[2];
    auto time_at_simd = [&](int simd) {
        auto k = flux;
        k.simd = simd;
        k.replication = 1;  // study one compute unit, as in Sec. 5.2
        return perf::fpga_kernel_time_ns(k, s10, 300.0);
    };
    const double v1 = time_at_simd(1);
    const double v2 = time_at_simd(2);
    const double v4 = time_at_simd(4);
    const double v8 = time_at_simd(8);
    EXPECT_GT(v1 / v2, 1.5);           // SIMD 2 scales well
    EXPECT_LT(v2 / v8, v1 / v2);       // diminishing beyond 2
    EXPECT_NEAR(v4 / v8, 1.0, 0.05);   // fully bandwidth-capped past 4
}

TEST(Cfd, RunMatchesRegionSimulation) {
    RunConfig cfg;
    cfg.size = 1;
    cfg.device = "a100";
    cfg.variant = Variant::sycl_opt;
    const AppResult r = run_fp32(cfg);
    const auto& dev = perf::device_by_name(cfg.device);
    const auto est = simulate_region(region(false, cfg.variant, dev, cfg.size),
                                     dev, perf::runtime_kind::sycl);
    EXPECT_NEAR(r.kernel_ms, est.kernel_ms(), r.kernel_ms * 0.02);
}

}  // namespace
}  // namespace altis::apps::cfd
