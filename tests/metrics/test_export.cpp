// Exporter correctness: Prometheus text exposition (escaping, cumulative
// histogram buckets), structured JSON (round-tripped through the strict
// mini_json parser) and Chrome trace-event counter tracks.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "metrics/export.hpp"
#include "metrics/metrics.hpp"
#include "metrics/session.hpp"
#include "support/mini_json.hpp"

namespace altis::metrics {
namespace {

metric_value make_value(std::string name, instrument_kind kind,
                        std::int64_t value, label_set labels = {}) {
    metric_value m;
    m.info.name = std::move(name);
    m.info.help = "help text";
    m.info.kind = kind;
    m.info.labels = std::move(labels);
    m.value = value;
    return m;
}

TEST(PromEscaping, LabelValueEscapes) {
    EXPECT_EQ(escape_label_value("plain"), "plain");
    EXPECT_EQ(escape_label_value("back\\slash"), "back\\\\slash");
    EXPECT_EQ(escape_label_value("quo\"te"), "quo\\\"te");
    EXPECT_EQ(escape_label_value("new\nline"), "new\\nline");
    EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(PromEscaping, LabelsEscapedInExposition) {
    snapshot snap;
    snap.session_name = "t";
    snap.metrics.push_back(make_value(
        "demo_total", instrument_kind::counter, 7,
        {{"path", "C:\\tmp"}, {"msg", "say \"hi\"\nbye"}}));
    std::ostringstream out;
    write_prometheus(snap, out);
    const std::string s = out.str();
    EXPECT_NE(s.find("# HELP demo_total help text"), std::string::npos);
    EXPECT_NE(s.find("# TYPE demo_total counter"), std::string::npos);
    EXPECT_NE(s.find("path=\"C:\\\\tmp\""), std::string::npos);
    EXPECT_NE(s.find("msg=\"say \\\"hi\\\"\\nbye\""), std::string::npos);
    EXPECT_NE(s.find("} 7\n"), std::string::npos);
}

TEST(PromExposition, WatermarkExportsAsGauge) {
    snapshot snap;
    snap.metrics.push_back(
        make_value("peak_bytes", instrument_kind::watermark, 4096));
    std::ostringstream out;
    write_prometheus(snap, out);
    EXPECT_NE(out.str().find("# TYPE peak_bytes gauge"), std::string::npos);
    EXPECT_NE(out.str().find("peak_bytes 4096\n"), std::string::npos);
}

TEST(PromExposition, HistogramBucketsAreCumulative) {
    histogram h;
    h.record(0);    // bucket 0 (le="0")
    h.record(1);    // bucket 1 (le="1")
    h.record(2);    // bucket 2 (le="3")
    h.record(3);    // bucket 2
    h.record(100);  // bucket 7 (le="127")

    metric_value m = make_value("lat_ns", instrument_kind::histogram, 0);
    m.hist = h.aggregate();
    snapshot snap;
    snap.metrics.push_back(m);

    std::ostringstream out;
    write_prometheus(snap, out);
    const std::string s = out.str();
    EXPECT_NE(s.find("# TYPE lat_ns histogram"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_bucket{le=\"0\"} 1\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_bucket{le=\"1\"} 2\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_bucket{le=\"3\"} 4\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_bucket{le=\"127\"} 5\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_sum 106\n"), std::string::npos);
    EXPECT_NE(s.find("lat_ns_count 5\n"), std::string::npos);
    // Empty buckets past the last populated one are not emitted.
    EXPECT_EQ(s.find("le=\"255\""), std::string::npos);
}

TEST(JsonExport, RoundTripsThroughStrictParser) {
    histogram h;
    h.record(5);
    h.record(9);

    snapshot snap;
    snap.session_name = "json \"quoted\"\nname";
    snap.duration_ns = 1.5e9;
    snap.metrics.push_back(make_value("a_total", instrument_kind::counter, 3));
    snap.metrics.push_back(make_value("level", instrument_kind::gauge, -2));
    metric_value hist = make_value("sizes", instrument_kind::histogram, 0);
    hist.hist = h.aggregate();
    snap.metrics.push_back(hist);

    sampled_series series;
    series.info.name = "level";
    series.info.kind = instrument_kind::gauge;
    series.samples = {{0.0, 1.0}, {5e6, 2.0}};

    std::ostringstream out;
    write_json(snap, {series}, out);

    const mini_json::value root = mini_json::parse(out.str());
    EXPECT_EQ(root.at("session").as_string(), "json \"quoted\"\nname");
    EXPECT_DOUBLE_EQ(root.at("duration_ns").as_number(), 1.5e9);

    const auto& metrics = root.at("metrics").as_array();
    ASSERT_EQ(metrics.size(), 3u);
    EXPECT_EQ(metrics[0].at("name").as_string(), "a_total");
    EXPECT_EQ(metrics[0].at("type").as_string(), "counter");
    EXPECT_DOUBLE_EQ(metrics[0].at("value").as_number(), 3.0);
    EXPECT_DOUBLE_EQ(metrics[1].at("value").as_number(), -2.0);
    EXPECT_EQ(metrics[2].at("type").as_string(), "histogram");
    EXPECT_DOUBLE_EQ(metrics[2].at("count").as_number(), 2.0);
    EXPECT_DOUBLE_EQ(metrics[2].at("sum").as_number(), 14.0);
    const auto& buckets = metrics[2].at("buckets").as_array();
    ASSERT_EQ(buckets.size(), 2u);  // 5 -> le 7, 9 -> le 15
    EXPECT_DOUBLE_EQ(buckets[0].at("le").as_number(), 7.0);
    EXPECT_DOUBLE_EQ(buckets[0].at("count").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(buckets[1].at("le").as_number(), 15.0);

    const auto& ser = root.at("series").as_array();
    ASSERT_EQ(ser.size(), 1u);
    EXPECT_EQ(ser[0].at("name").as_string(), "level");
    const auto& samples = ser[0].at("samples").as_array();
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_DOUBLE_EQ(samples[1].as_array()[0].as_number(), 5e6);
    EXPECT_DOUBLE_EQ(samples[1].as_array()[1].as_number(), 2.0);
}

TEST(ChromeCounters, EmitsCounterEventsUnderMetricsPid) {
    sampled_series series;
    series.info.name = "syclite_queue_inflight_kernels";
    series.info.kind = instrument_kind::gauge;
    series.samples = {{1000.0, 1.0}, {2000.0, 3.0}};

    std::ostringstream out;
    bool first = true;
    write_chrome_counter_events({series}, out, first);
    EXPECT_FALSE(first);  // events were written; comma protocol advanced

    // The emitted fragment is a valid slice of a traceEvents array.
    const mini_json::value events = mini_json::parse("[" + out.str() + "]");
    const auto& arr = events.as_array();
    ASSERT_EQ(arr.size(), 3u);  // process_name metadata + 2 samples
    EXPECT_EQ(arr[0].at("ph").as_string(), "M");
    EXPECT_EQ(arr[0].at("name").as_string(), "process_name");
    EXPECT_DOUBLE_EQ(arr[0].at("pid").as_number(), 2.0);
    EXPECT_EQ(arr[1].at("ph").as_string(), "C");
    EXPECT_EQ(arr[1].at("name").as_string(),
              "syclite_queue_inflight_kernels");
    EXPECT_DOUBLE_EQ(arr[1].at("ts").as_number(), 1.0);  // ns -> us
    EXPECT_DOUBLE_EQ(arr[1].at("args").at("value").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(arr[2].at("args").at("value").as_number(), 3.0);
}

TEST(ChromeCounters, EmptySeriesWritesNothing) {
    std::ostringstream out;
    bool first = true;
    write_chrome_counter_events({}, out, first);
    EXPECT_TRUE(first);
    EXPECT_TRUE(out.str().empty());
}

}  // namespace
}  // namespace altis::metrics
