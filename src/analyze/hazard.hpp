// Happens-before hazard detection over a recorded command graph.
//
// syclite queues are in-order, so sequential kernel-after-kernel reuse of a
// buffer is safe; the hazards worth flagging are the ones concurrency or the
// host introduce:
//
//   ALS-H1  two kernels of the same dataflow group touch overlapping memory,
//           at least one writing, with no pipe connecting them (pipes are the
//           group's only synchronization channel -- Fig. 3's kernels share
//           `centers` safely *because* the pipes sequence their rounds).
//   ALS-H2  a host transfer reads or writes a range that async kernel work
//           touched with no intervening queue::wait().
//   ALS-H4  a kernel declares a USM range (handler::uses_usm) that is not
//           live: freed (use-after-free) or never allocated; also double and
//           invalid usm_free calls.
//   ALS-L5  queue::wait() with no commands since the previous wait -- the
//           redundant-synchronization smell behind the paper's Sec. 3.3
//           timing pitfalls.
#pragma once

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"

namespace altis::analyze {

void lint_hazards(const command_graph& g, report& out);

}  // namespace altis::analyze
