// Console table/series printers shared by the figure- and table-regenerating
// benchmark binaries. Each bench prints the same rows/series as the paper's
// corresponding exhibit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace altis {

/// Fixed-width console table. Columns are sized to fit contents.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> row);
    void print(std::ostream& out) const;

    /// Format helper: fixed-point with `digits` decimals.
    static std::string num(double value, int digits = 2);
    /// Format helper: percentage with one decimal, e.g. "35.9%".
    static std::string percent(double fraction);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure-like series block: one labeled row of values per series,
/// matching the bar groups in the paper's figures.
class SeriesBlock {
public:
    SeriesBlock(std::string title, std::vector<std::string> categories);

    void add_series(const std::string& label, const std::vector<double>& values,
                    int digits = 2);
    void print(std::ostream& out) const;

private:
    std::string title_;
    Table table_;
};

}  // namespace altis
