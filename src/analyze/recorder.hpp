// The recorder is the capture side of altis::sanitize: a process-wide sink
// (mirroring trace::session's current()/scope wiring) that the syclite queue
// and the region simulator feed command-graph nodes into. Capture is
// thread-safe -- dataflow kernels retire their command groups from worker
// threads -- and entirely passive: with no recorder current, the runtime
// behaves (and times) exactly as before the analyzer existed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analyze/findings.hpp"
#include "analyze/graph.hpp"
#include "analyze/probe.hpp"
#include "analyze/shadow.hpp"

namespace altis::analyze {

/// Enforcement level of a sanitize session (the --sanitize flag).
enum class level { off, warn, error };

[[nodiscard]] const char* to_string(level lv);

class recorder {
public:
    explicit recorder(level lv = level::warn)
        : level_(lv), shadow_(std::make_unique<shadow::store>()) {}

    [[nodiscard]] level enforcement() const { return level_; }

    // ---- capture API (called by syclite / simulate_region) ----

    /// Registers a queue; nodes carry the returned ordinal so the passes
    /// never correlate commands across unrelated queues.
    int register_queue(const perf::device_spec& dev);

    struct cg_handle {
        std::uint64_t id = 0;
        probe::cg_token* token = nullptr;
        /// Shadow actor of the submission; the queue binds it around kernel
        /// execution so observed accesses attribute to this kernel.
        int actor = -1;
    };
    /// Opens a command group: assigns the next id and a live lifetime token
    /// for the accessors the group hands out.
    cg_handle begin_command_group();
    /// Marks the group's accessors stale (kernel finished or group dropped).
    void retire(std::uint64_t cg);

    /// Opens a dataflow group; members record the returned id.
    int begin_group();
    /// Dataflow group joined (worker threads drained): closes the group's
    /// happens-before edges in the shadow store.
    void end_group(int group, int queue);

    void add_node(node n);
    void record_wait(int queue);
    void record_transfer(int queue, node_kind kind, const void* base,
                         std::size_t bytes);

    // ---- out-of-order graph capture (DESIGN.md "Command graph") ----
    // On an OOO queue the submission log is not an execution order, so
    // happens-before is sourced from the scheduler's real edges instead of
    // the in-order queue-clock chaining.

    /// Kernel node on an out-of-order queue: `dep_actors` are the shadow
    /// actors of its resolved graph dependencies (explicit depends_on plus
    /// accessor-implied conflicts).
    void add_node_graph(node n, const std::vector<int>& dep_actors);
    /// Async transfer node on an out-of-order queue; allocates and returns
    /// the transfer's own shadow actor (ordered after `dep_actors`).
    int record_transfer_graph(int queue, node_kind kind, const void* base,
                              std::size_t bytes,
                              const std::vector<int>& dep_actors);
    /// Graph join without a wait node (buffer write-back, queue teardown):
    /// the host joins every outstanding member of `queue`'s graph.
    void record_graph_join(int queue);
    /// The wait node for queue::wait() on an OOO queue; `pending` is the
    /// number of commands in the graph when the join was issued (ALS-L5).
    /// Call after record_graph_join().
    void record_graph_wait_node(int queue, std::size_t pending);
    /// event::wait(): the host joined one node's actor (edges make that
    /// transitive over the node's dependencies).
    void record_host_join_actor(int actor);
    void record_usm_alloc(const void* base, std::size_t bytes,
                          std::uint64_t generation = 0);
    void record_usm_free(const void* base, std::uint64_t generation = 0);
    /// Analytic descriptor from simulate_region: perf-lint rules only.
    void record_simulated_kernel(const perf::kernel_stats& stats,
                                 const perf::device_spec& dev);

    /// Runtime finding (ALS-H3 from the probe, pre-launch gate findings).
    void add_finding(finding f);
    /// Called by probe::on_stale_use; resolves the creating kernel's name
    /// and files an ALS-H3 finding once per (group, base).
    void stale_accessor_use(std::uint64_t cg, const void* base);

    // ---- analysis-side API ----

    [[nodiscard]] const command_graph& graph() const { return graph_; }
    /// Kernel nodes of one dataflow group (used by the pre-launch gate).
    [[nodiscard]] std::vector<node> group_nodes(int group) const;
    /// Findings raised during capture (merged into the final report).
    [[nodiscard]] const report& runtime_findings() const { return runtime_; }
    /// Observed-access shadow store of this session (ALS-R*/ALS-D1 input).
    [[nodiscard]] shadow::store& shadow() const { return *shadow_; }

    // ---- process-wide current recorder ----
    [[nodiscard]] static recorder* current();
    static void set_current(recorder* r);

    class scope {
    public:
        explicit scope(recorder& r) : prev_(current()) { set_current(&r); }
        ~scope() { set_current(prev_); }
        scope(const scope&) = delete;
        scope& operator=(const scope&) = delete;

    private:
        recorder* prev_;
    };

private:
    level level_;
    mutable std::mutex mu_;
    command_graph graph_;
    report runtime_;
    int next_queue_ = 0;
    int next_group_ = 0;
    std::uint64_t next_cg_ = 1;
    std::unique_ptr<shadow::store> shadow_;
    std::unordered_map<std::uint64_t, probe::cg_token*> live_tokens_;
    std::unordered_map<std::uint64_t, std::string> cg_kernel_;
    std::unordered_map<std::uint64_t, int> cg_actor_;
    std::unordered_map<int, std::vector<int>> group_members_;
    /// Actors submitted to a queue's out-of-order graph since its last join.
    std::unordered_map<int, std::vector<int>> ooo_members_;
    /// (cg, base) pairs already reported by the probe (dedup).
    std::vector<std::pair<std::uint64_t, const void*>> stale_reported_;
};

}  // namespace altis::analyze
