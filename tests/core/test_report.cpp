#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace altis {
namespace {

TEST(Table, PrintsAlignedHeaderAndRows) {
    Table t({"app", "speedup"});
    t.add_row({"kmeans", "510.3"});
    t.add_row({"nw", "17.6"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("| app"), std::string::npos);
    EXPECT_NE(s.find("kmeans"), std::string::npos);
    EXPECT_NE(s.find("17.6"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::percent(0.359), "35.9%");
}

TEST(SeriesBlock, PrintsTitleAndSeries) {
    SeriesBlock b("Fig X", {"size1", "size2"});
    b.add_series("rtx_2080", {1.5, 2.5});
    std::ostringstream os;
    b.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("== Fig X =="), std::string::npos);
    EXPECT_NE(s.find("rtx_2080"), std::string::npos);
    EXPECT_NE(s.find("2.50"), std::string::npos);
}

TEST(SeriesBlock, WrongSeriesLengthThrows) {
    SeriesBlock b("Fig", {"c1", "c2"});
    EXPECT_THROW(b.add_series("s", {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace altis
