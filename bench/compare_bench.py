#!/usr/bin/env python3
"""Perf-regression gate over two recorded ablation_runtime reports.

Usage: compare_bench.py OLD.json NEW.json [--threshold 0.25]

Both inputs are google-benchmark JSON reports as written by
`bench/ablation_runtime --json` (which also embeds an `altis_metrics`
snapshot, see docs/OBSERVABILITY.md). The gate:

  * fails (exit 1) when any *gated* benchmark's real_time regressed by more
    than --threshold relative to the baseline. Gated benchmarks are the
    dispatch and pipe paths (BM_ParallelFor*, BM_PipeThroughput*) -- the two
    the paper's dataflow designs lean on hardest -- plus the memory
    subsystem's alloc-churn and transfer paths (BM_AllocChurn*,
    BM_Transfer*, docs/PERFORMANCE.md "Memory subsystem") and the command
    graph scheduler (BM_GraphOverlap*, BM_SchedLatency*);
  * fails (exit 1) when the current report contains both graph-overlap
    benchmarks and out-of-order execution is not at least
    --overlap-speedup x faster than in-order on wall clock (the whole
    point of the scheduler, docs/PERFORMANCE.md "Graph overlap"); skipped
    silently when either benchmark is absent;
  * reports every other benchmark's delta informationally;
  * diffs the embedded engine telemetry (counters only: pool jobs, pipe
    parks, ...) informationally, so a timing regression arrives with the
    counter shifts that usually explain it;
  * exits 0 with a note when the baseline is missing or unreadable (first
    run of a new repo/branch has no previous artifact to compare against).
"""

import argparse
import json
import sys

GATED_PREFIXES = ("BM_ParallelFor", "BM_PipeThroughput", "BM_AllocChurn",
                  "BM_Transfer", "BM_GraphOverlap", "BM_SchedLatency")


def prefixed_time(times, prefix):
    """real_time of the single benchmark whose name starts with `prefix`.

    The overlap benches run with ->UseRealTime(), which suffixes the
    reported name with "/real_time" -- hence prefix match, not exact.
    Returns None when absent or ambiguous.
    """
    hits = [t for n, t in times.items() if n.startswith(prefix)]
    return hits[0] if len(hits) == 1 else None


def load_report(path):
    with open(path) as f:
        return json.load(f)


def benchmark_times(report):
    """name -> real_time (ns); aggregate entries are skipped."""
    times = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        if name is None or "real_time" not in b:
            continue
        times[name] = float(b["real_time"])
    return times


def metric_totals(report):
    """counter name -> value from the embedded altis_metrics snapshot."""
    snap = report.get("altis_metrics")
    if not isinstance(snap, dict):
        return {}
    totals = {}
    for m in snap.get("metrics", []):
        if m.get("type") == "counter" and "value" in m:
            totals[m["name"]] = float(m["value"])
    return totals


def is_gated(name):
    return any(name.startswith(p) for p in GATED_PREFIXES)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old", help="baseline BENCH_runtime.json")
    ap.add_argument("new", help="current BENCH_runtime.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed relative real_time regression on "
                         "gated benchmarks (default 0.25 = +25%%)")
    ap.add_argument("--overlap-speedup", type=float, default=1.5,
                    help="min required BM_GraphOverlapInOrder / "
                         "BM_GraphOverlapOOO wall-clock ratio in the "
                         "current report (default 1.5)")
    args = ap.parse_args()

    try:
        old_report = load_report(args.old)
    except (OSError, ValueError) as e:
        print(f"compare_bench: no usable baseline ({e}); skipping gate")
        return 0
    try:
        new_report = load_report(args.new)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read current report: {e}",
              file=sys.stderr)
        return 2

    old_times = benchmark_times(old_report)
    new_times = benchmark_times(new_report)
    if not old_times:
        print("compare_bench: baseline has no benchmarks; skipping gate")
        return 0

    failures = []
    for name in sorted(new_times):
        if name not in old_times or old_times[name] <= 0:
            print(f"  NEW    {name}: {new_times[name]:.1f} ns (no baseline)")
            continue
        delta = (new_times[name] - old_times[name]) / old_times[name]
        gate = "GATED " if is_gated(name) else "      "
        print(f"  {gate}{name}: {old_times[name]:.1f} -> "
              f"{new_times[name]:.1f} ns ({delta:+.1%})")
        if is_gated(name) and delta > args.threshold:
            failures.append((name, delta))

    old_metrics = metric_totals(old_report)
    new_metrics = metric_totals(new_report)
    shifts = []
    for name in sorted(set(old_metrics) | set(new_metrics)):
        ov, nv = old_metrics.get(name, 0.0), new_metrics.get(name, 0.0)
        if ov == nv:
            continue
        rel = f" ({(nv - ov) / ov:+.1%})" if ov > 0 else ""
        shifts.append(f"  {name}: {ov:.0f} -> {nv:.0f}{rel}")
    if shifts:
        print("engine telemetry shifts (informational):")
        print("\n".join(shifts))

    in_order = prefixed_time(new_times, "BM_GraphOverlapInOrder")
    ooo = prefixed_time(new_times, "BM_GraphOverlapOOO")
    if in_order is not None and ooo is not None and ooo > 0:
        speedup = in_order / ooo
        print(f"graph overlap: in-order {in_order:.1f} ns vs OOO "
              f"{ooo:.1f} ns -> {speedup:.2f}x speedup "
              f"(required >= {args.overlap_speedup:.2f}x)")
        if speedup < args.overlap_speedup:
            print(f"\ncompare_bench: out-of-order graph overlap speedup "
                  f"{speedup:.2f}x is below the required "
                  f"{args.overlap_speedup:.2f}x", file=sys.stderr)
            return 1

    if failures:
        print(f"\ncompare_bench: {len(failures)} gated benchmark(s) "
              f"regressed beyond +{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: OK (gated regressions within "
          f"+{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
