// FPGA synthesis estimator: predicts ALM/BRAM/DSP utilization and achievable
// kernel frequency (Fmax) for a design (= the set of kernels compiled into
// one bitstream), and decides whether the design fits. This substitutes for
// Quartus place-and-route in the reproduction (DESIGN.md Sec. 2) and
// regenerates Table 3. It also reproduces the paper's qualitative synthesis
// failures: SRAD's eleven accessor-object arguments exceeding the Stratix 10
// (Sec. 4) and timing violations from over-unrolling congested local memory
// (Sec. 5.2, case 3).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"

namespace altis::perf {

/// Estimated utilization of one design on one FPGA.
struct resource_usage {
    double alms = 0.0;
    double brams = 0.0;  ///< M20K blocks
    double dsps = 0.0;
    double fmax_mhz = 0.0;

    double alm_frac = 0.0;   ///< fraction of device total
    double bram_frac = 0.0;
    double dsp_frac = 0.0;

    bool fits = true;           ///< placement succeeds
    bool timing_clean = true;   ///< no timing violations at fmax_mhz
    std::string failure_reason; ///< set when !fits or !timing_clean
};

/// Resources of a single kernel (before the fixed board interface).
[[nodiscard]] resource_usage estimate_kernel_resources(const kernel_stats& k,
                                                       const device_spec& dev);

/// Resources and Fmax of a whole design: sum of kernel resources plus the
/// fixed board interface / BSP shell; Fmax is the minimum over kernels.
[[nodiscard]] resource_usage estimate_design_resources(
    std::span<const kernel_stats> kernels, const device_spec& dev);

/// Convenience overload.
[[nodiscard]] resource_usage estimate_design_resources(
    const std::vector<kernel_stats>& kernels, const device_spec& dev);

namespace calibration {
// Fixed board interface (BSP shell: PCIe, DDR controllers) -- a fraction of
// the device every bitstream pays even with an empty kernel.
inline constexpr double kShellAlmFrac = 0.08;
inline constexpr double kShellBramFrac = 0.035;

// Per-operation datapath costs. Unrolled/vectorized copies of a loop body
// share control logic, so ALMs grow with kWidthAlmFrac per extra copy while
// DSPs replicate fully.
inline constexpr double kAlmsPerFp32Op = 200.0;
inline constexpr double kAlmsPerFp64Op = 1000.0;
inline constexpr double kWidthAlmFrac = 0.35;
inline constexpr double kAlmsPerIntOp = 70.0;
inline constexpr double kAlmsPerBranch = 250.0;
inline constexpr double kDspsPerFp32Op = 1.0;   // one FMA per DSP
inline constexpr double kDspsPerFp64Op = 4.0;
inline constexpr double kM20kBytes = 2560.0;    // 20 kbit

// Kernel argument interfaces. Passing a SYCL *accessor object* forces its
// member functions to be synthesized (Sec. 4) -- an order of magnitude more
// logic than a raw pointer interface.
inline constexpr double kAlmsPerPointerArg = 900.0;
// Calibrated so that eleven accessor objects exceed the Stratix 10 while the
// pointer-passing rewrite fits comfortably (Sec. 4, SRAD).
inline constexpr double kAlmsPerAccessorObjArg = 75000.0;
inline constexpr double kBramsPerAccessorObjArg = 24.0;

// Dynamically-sized DPCT local accessors reserve 16 KiB each (Sec. 4).
inline constexpr double kDynamicLocalBytes = 16.0 * 1024.0;

// Arbitration logic per congested local array.
inline constexpr double kAlmsPerArbiterPort = 1400.0;

// Fraction of a resource class that can be used before placement fails.
inline constexpr double kFitLimit = 0.94;
}  // namespace calibration

}  // namespace altis::perf
