// Trace session: the collector the syclite queue and the region simulator
// emit spans into. A session is passive storage plus a little bookkeeping
// (region stack, device binding for peak-based classification); exporters
// (chrome_export.hpp, profile.hpp) turn a finished session into artifacts.
//
// Wiring: a session becomes the process-wide "current" session via
// session::scope (RAII) or set_current(); syclite::queue picks up the
// current session at construction, so applications need no code changes to
// become traceable -- `altis_run --trace out.json` just works.
#pragma once

#include <string>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"
#include "trace/span.hpp"

namespace altis::trace {

class session {
public:
    explicit session(std::string name = "altis");

    /// Remember the device the timeline was simulated for; the profiler uses
    /// its Table-2 peaks to classify kernels compute- vs bandwidth-bound.
    /// The pointer must outlive the session (device_catalog entries do).
    void bind_device(const perf::device_spec& dev) { dev_ = &dev; }
    [[nodiscard]] const perf::device_spec* device() const { return dev_; }

    void record(span s);
    /// Kernel span with counters derived from the model descriptor.
    /// `invocations > 1` marks an aggregated slot (duration covers them all).
    /// Graph commands pass their command id and resolved dependency ids so
    /// exporters can draw flow arrows (cmd 0 = not a graph command).
    void record_kernel(const perf::kernel_stats& k, double start_ns,
                       double end_ns, int track = 0,
                       double invocations = 1.0, std::uint64_t cmd = 0,
                       std::vector<std::uint64_t> deps = {});

    /// Top-level region bracketing. Regions may nest; each end_region pops
    /// the innermost open region and records its span.
    void begin_region(std::string name, double start_ns);
    void end_region(double end_ns);
    [[nodiscard]] int open_regions() const {
        return static_cast<int>(region_stack_.size());
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<span>& spans() const { return spans_; }
    [[nodiscard]] bool empty() const { return spans_.empty(); }

    /// Total kernel time as the queue counts it: sequential kernel spans
    /// (track 0) plus dataflow-group walls. Kernels inside a group overlap,
    /// so their individual spans are excluded here.
    [[nodiscard]] double kernel_ns() const;
    /// Everything charged to the non-kernel side of the decomposition.
    [[nodiscard]] double non_kernel_ns() const;
    /// Latest end timestamp across recorded spans (0 when empty); appended
    /// timelines (e.g. successive region simulations) start here.
    [[nodiscard]] double last_end_ns() const;

    // ---- process-wide current session ----
    [[nodiscard]] static session* current();
    static void set_current(session* s);

    /// RAII activation: installs the session as current, restores the
    /// previous one on destruction.
    class scope {
    public:
        explicit scope(session& s) : prev_(current()) { set_current(&s); }
        ~scope() { set_current(prev_); }
        scope(const scope&) = delete;
        scope& operator=(const scope&) = delete;

    private:
        session* prev_;
    };

private:
    struct open_region {
        std::string name;
        double start_ns;
    };

    std::string name_;
    const perf::device_spec* dev_ = nullptr;
    std::vector<span> spans_;
    std::vector<open_region> region_stack_;
};

}  // namespace altis::trace
