file(REMOVE_RECURSE
  "CMakeFiles/ablation_scan.dir/ablation_scan.cpp.o"
  "CMakeFiles/ablation_scan.dir/ablation_scan.cpp.o.d"
  "ablation_scan"
  "ablation_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
