// Analogue of the SubmitComputeUnits helper from Intel's oneAPI samples
// repository, which the paper uses to replicate Single-Task kernels
// (Sec. 5.1), plus the custom ND-Range replication helper the authors had to
// write themselves because the samples only cover Single-Task.
#pragma once

#include <functional>
#include <vector>

#include "sycl/queue.hpp"

namespace syclite {

/// Submits `units` copies of a Single-Task kernel as one dataflow group.
/// Each copy receives its unit index and is expected to process its share of
/// the work (the helper does not split data itself, exactly like the
/// original). Timing-wise each copy carries replication = units, and the
/// group overlaps, so the modeled wall time is the replicated design's.
template <typename F>
std::vector<event> submit_compute_units(queue& q, int units,
                                        perf::kernel_stats stats, F&& f) {
    if (units < 1) throw std::invalid_argument("submit_compute_units: units >= 1");
    stats.replication = units;
    dataflow_guard group(q);
    for (int unit = 0; unit < units; ++unit) {
        q.submit([&](handler& h) {
            perf::kernel_stats s = stats;
            s.name += "_cu" + std::to_string(unit);
            h.single_task(s, [f, unit]() { f(unit); });
        });
    }
    return group.join();
}

/// The custom ND-Range replication helper (Sec. 5.1): instantiates the
/// kernel `units` times and distributes the work-groups among the copies by
/// a block partition of the group index space. f(nd_item, unit).
template <int Dims, typename F>
std::vector<event> submit_nd_range_units(queue& q, int units,
                                         nd_range<Dims> ndr,
                                         perf::kernel_stats stats, F&& f) {
    if (units < 1)
        throw std::invalid_argument("submit_nd_range_units: units >= 1");
    static_assert(Dims == 1, "work distribution implemented for 1-D ranges");
    const std::size_t groups = ndr.get_group_range()[0];
    const std::size_t wg = ndr.get_local_range()[0];
    // Each copy is submitted with its own share of the work-groups, so the
    // per-copy descriptor keeps replication = 1 (the handler overwrites the
    // geometry per copy); the whole-design descriptor used for resource
    // estimation carries the real replication factor.
    stats.replication = 1;
    dataflow_guard group(q);
    for (int unit = 0; unit < units; ++unit) {
        const std::size_t begin =
            groups * static_cast<std::size_t>(unit) /
            static_cast<std::size_t>(units);
        const std::size_t end = groups * (static_cast<std::size_t>(unit) + 1) /
                                static_cast<std::size_t>(units);
        if (begin == end) continue;
        q.submit([&](handler& h) {
            perf::kernel_stats s = stats;
            s.name += "_cu" + std::to_string(unit);
            const std::size_t offset = begin * wg;
            h.parallel_for(
                nd_range<1>(range<1>((end - begin) * wg), range<1>(wg)), s,
                [f, offset, unit](nd_item<1> it) {
                    // Present the global id as if in the full range.
                    const nd_item<1> shifted(
                        id<1>(it.get_global_id(0) + offset),
                        id<1>(it.get_local_id(0)),
                        id<1>(it.get_group(0)),
                        range<1>(it.get_global_range(0)),
                        range<1>(it.get_local_range(0)));
                    f(shifted, unit);
                });
        });
    }
    return group.join();
}

}  // namespace syclite
