// Pipe-topology linter: hand-built dataflow groups for the static rules plus
// the pre-launch gate on a real queue (--sanitize=error refuses a doomed
// group before any worker thread can block).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/sanitize.hpp"
#include "sycl/syclite.hpp"

namespace altis::analyze {
namespace {

bool has_rule(const report& r, const std::string& id) {
    return std::any_of(r.findings().begin(), r.findings().end(),
                       [&](const finding& f) { return f.rule == id; });
}

node kernel_node(const char* name, std::vector<pipe_endpoint> pipes) {
    node n;
    n.kind = node_kind::kernel;
    n.kernel = name;
    n.queue = 0;
    n.group = 0;
    n.pipes = std::move(pipes);
    return n;
}

pipe_endpoint endpoint(const void* id, const char* name, std::size_t cap,
                       pipe_dir dir, double items, double rounds = 1.0) {
    return {id, name, cap, dir, items, rounds};
}

const void* const kPipeA = reinterpret_cast<const void*>(0x10);
const void* const kPipeB = reinterpret_cast<const void*>(0x20);

TEST(Pipes, P1EndpointWithoutPeer) {
    report r;
    lint_pipe_group(
        {kernel_node("lonely_writer",
                     {endpoint(kPipeA, "out", 8, pipe_dir::write, 4.0)})},
        r);
    ASSERT_TRUE(has_rule(r, "ALS-P1"));
}

TEST(Pipes, P1CleanWhenBothEndsExist) {
    report r;
    lint_pipe_group(
        {kernel_node("w", {endpoint(kPipeA, "ch", 8, pipe_dir::write, 4.0)}),
         kernel_node("r", {endpoint(kPipeA, "ch", 8, pipe_dir::read, 4.0)})},
        r);
    EXPECT_FALSE(has_rule(r, "ALS-P1"));
}

// The seeded two-kernel feedback cycle: every pipe on the cycle moves more
// items per round than it can buffer, so neither stage can ever finish a
// round -- guaranteed deadlock, caught before launch.
TEST(Pipes, P2AllOverflowFeedbackCycle) {
    report r;
    lint_pipe_group(
        {kernel_node("stage_a",
                     {endpoint(kPipeA, "fwd", 4, pipe_dir::write, 100.0),
                      endpoint(kPipeB, "back", 4, pipe_dir::read, 100.0)}),
         kernel_node("stage_b",
                     {endpoint(kPipeA, "fwd", 4, pipe_dir::read, 100.0),
                      endpoint(kPipeB, "back", 4, pipe_dir::write, 100.0)})},
        r);
    ASSERT_TRUE(has_rule(r, "ALS-P2"));
}

// kmeans' shape: the forward pipe overflows per round, but the feedback pipe
// buffers a whole round (1024 >= 128) -- the loop is feasible (Fig. 3).
TEST(Pipes, P2FeasibleWhenOnePipeBuffersARound) {
    report r;
    lint_pipe_group(
        {kernel_node("map_centers",
                     {endpoint(kPipeA, "map", 256, pipe_dir::write, 4096.0),
                      endpoint(kPipeB, "centers", 1024, pipe_dir::read, 128.0)}),
         kernel_node("reduce_update",
                     {endpoint(kPipeA, "map", 256, pipe_dir::read, 4096.0),
                      endpoint(kPipeB, "centers", 1024, pipe_dir::write,
                               128.0)})},
        r);
    EXPECT_FALSE(has_rule(r, "ALS-P2"));
}

TEST(Pipes, P3VolumeMismatch) {
    report r;
    lint_pipe_group(
        {kernel_node("w",
                     {endpoint(kPipeA, "ch", 8, pipe_dir::write, 10.0, 2.0)}),
         kernel_node("r",
                     {endpoint(kPipeA, "ch", 8, pipe_dir::read, 10.0, 1.0)})},
        r);
    ASSERT_TRUE(has_rule(r, "ALS-P3"));
}

TEST(Pipes, P3SilentWhenVolumesAreUndeclared) {
    report r;
    lint_pipe_group(
        {kernel_node("w", {endpoint(kPipeA, "ch", 8, pipe_dir::write, 0.0)}),
         kernel_node("r", {endpoint(kPipeA, "ch", 8, pipe_dir::read, 0.0)})},
        r);
    EXPECT_FALSE(has_rule(r, "ALS-P3"));
}

TEST(Pipes, LintPipesWalksEveryGroupInTheGraph) {
    command_graph g;
    node lonely = kernel_node(
        "lonely", {endpoint(kPipeA, "ch", 8, pipe_dir::read, 1.0)});
    lonely.group = 3;
    g.nodes.push_back(lonely);
    report r;
    lint_pipes(g, r);
    EXPECT_TRUE(has_rule(r, "ALS-P1"));
}

// Pre-launch gate: under --sanitize=error a group whose topology is a
// guaranteed deadlock is refused at end_dataflow -- before any worker thread
// exists -- instead of tripping the runtime watchdog seconds later.
TEST(Pipes, ErrorLevelGateRefusesDoomedGroup) {
    recorder rec(level::error);
    recorder::scope scope(rec);
    syclite::queue q("xeon_6128");
    syclite::pipe<int> ch(4, "orphan");
    syclite::dataflow_guard g(q);
    q.submit([&](syclite::handler& h) {
        h.reads_pipe(ch, 1.0, 1.0);
        perf::kernel_stats k;
        k.name = "doomed_reader";
        h.single_task(std::move(k), [&] { (void)ch.read(); });
    });
    EXPECT_THROW((void)g.join(), sanitize_error);
    // The gate's findings survive for the final report.
    EXPECT_TRUE(has_rule(rec.runtime_findings(), "ALS-P1"));
}

TEST(Pipes, WarnLevelDoesNotBlockExecution) {
    recorder rec(level::warn);
    recorder::scope scope(rec);
    syclite::queue q("xeon_6128");
    syclite::pipe<int> ch(8, "ch");
    syclite::dataflow_guard g(q);
    q.submit([&](syclite::handler& h) {
        h.writes_pipe(ch, 1.0, 1.0);
        perf::kernel_stats k;
        k.name = "producer";
        h.single_task(std::move(k), [&] { ch.write(42); });
    });
    q.submit([&](syclite::handler& h) {
        h.reads_pipe(ch, 1.0, 1.0);
        perf::kernel_stats k;
        k.name = "consumer";
        h.single_task(std::move(k), [&] { EXPECT_EQ(ch.read(), 42); });
    });
    (void)g.join();
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-P1"));
    EXPECT_FALSE(has_rule(run_all(rec), "ALS-P2"));
}

}  // namespace
}  // namespace altis::analyze
