// Regenerates Table 3: resource utilization (ALM/BRAM/DSP, %) and achieved
// kernel frequency (MHz) of every Altis-SYCL FPGA design on Stratix 10 and
// Agilex, via the synthesis estimator that substitutes for Quartus
// (DESIGN.md Sec. 2). Mandelbrot gets one row per input size (three
// specialized bitstreams, Sec. 5.5); DWT2D is absent (baseline only, and the
// paper's Table 3 lists optimized designs).
#include <iostream>

#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "perf/resource_model.hpp"
#include "trace/harness.hpp"

namespace {

struct PaperRow {
    const char* label;
    double alm_s10, alm_agx, bram_s10, bram_agx, dsp_s10, dsp_agx;
    double f_s10, f_agx;
};

// Table 3 as printed in the paper.
constexpr PaperRow kPaper[] = {
    {"CFD FP32", 35.9, 79.7, 16.3, 43.7, 28.6, 70.4, 295.8, 425.2},
    {"CFD FP64", 65.7, 90.7, 30.0, 46.6, 21.7, 22.1, 256.3, 373.3},
    {"FDTD2D", 22.0, 28.6, 7.9, 15.7, 2.4, 3.1, 416.7, 554.3},
    {"KMeans", 25.3, 29.0, 7.0, 14.7, 10.8, 13.8, 347.5, 370.6},
    {"LavaMD", 76.7, 76.0, 15.0, 21.0, 22.9, 16.2, 320.8, 519.2},
    {"Mandelbrot (size 1)", 61.8, 58.8, 4.0, 14.2, 71.4, 39.7, 335.0, 539.3},
    {"Mandelbrot (size 2)", 48.4, 65.1, 3.6, 10.5, 71.2, 56.8, 379.2, 539.3},
    {"Mandelbrot (size 3)", 45.3, 53.1, 3.9, 8.3, 71.1, 45.4, 375.0, 544.4},
    {"NW", 45.6, 45.5, 63.9, 59.4, 1.5, 1.0, 216.0, 414.1},
    {"PF Naive", 48.3, 80.4, 26.3, 37.6, 0.0, 0.0, 107.8, 108.4},
    {"PF Float", 60.1, 67.9, 32.9, 31.2, 3.6, 4.5, 101.9, 123.7},
    {"Raytracing", 71.4, 84.2, 37.5, 43.2, 53.4, 40.0, 321.9, 457.9},
    {"SRAD", 31.9, 44.8, 46.4, 33.5, 3.5, 4.5, 280.0, 463.2},
    {"Where", 32.3, 60.2, 15.3, 51.8, 0.0, 0.0, 308.3, 461.7},
};

const PaperRow* paper_row(const std::string& label) {
    for (const auto& r : kPaper)
        if (label == r.label) return &r;
    return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("table3_resources");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    namespace bench = altis::bench;
    namespace perf = altis::perf;

    const perf::device_spec& s10 = perf::device_by_name("stratix_10");
    const perf::device_spec& agx = perf::device_by_name("agilex");

    std::cout << "Table 3: estimated resource utilization (%) and Fmax (MHz) "
                 "on Stratix 10 and Agilex\n"
              << "(format: ours | paper)\n\n";

    Table t({"Application", "ALM S10", "ALM Agx", "BRAM S10", "BRAM Agx",
             "DSP S10", "DSP Agx", "Freq S10", "Freq Agx", "Implementation"});

    auto add_design = [&](const std::string& label,
                          const bench::SuiteEntry& e, int size) {
        const auto us = perf::estimate_design_resources(e.fpga_design(s10, size), s10);
        const auto ua = perf::estimate_design_resources(e.fpga_design(agx, size), agx);
        const PaperRow* p = paper_row(label);
        auto fmt = [](double ours, double paper) {
            return Table::percent(ours) + " | " + Table::num(paper, 1) + "%";
        };
        auto fmtf = [](double ours, double paper) {
            return Table::num(ours, 1) + " | " + Table::num(paper, 1);
        };
        t.add_row({label, fmt(us.alm_frac, p ? p->alm_s10 : 0),
                   fmt(ua.alm_frac, p ? p->alm_agx : 0),
                   fmt(us.bram_frac, p ? p->bram_s10 : 0),
                   fmt(ua.bram_frac, p ? p->bram_agx : 0),
                   fmt(us.dsp_frac, p ? p->dsp_s10 : 0),
                   fmt(ua.dsp_frac, p ? p->dsp_agx : 0),
                   fmtf(us.fmax_mhz, p ? p->f_s10 : 0),
                   fmtf(ua.fmax_mhz, p ? p->f_agx : 0), e.fpga_impl});
        if (!us.fits || !ua.fits)
            std::cout << "WARNING: " << label << " does not fit: "
                      << (us.fits ? ua.failure_reason : us.failure_reason)
                      << '\n';
    };

    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;  // DWT2D: baseline only, not in Table 3
        if (e.label == "Mandelbrot") {
            for (int size : {1, 2, 3})
                add_design("Mandelbrot (size " + std::to_string(size) + ")", e,
                           size);
        } else {
            add_design(e.label, e, 2);
        }
    }
    t.print(std::cout);

    std::cout << "\nDevice totals: S10 ALM " << s10.total_alms << ", BRAM "
              << s10.total_brams << ", DSP " << s10.total_dsps << "; Agilex ALM "
              << agx.total_alms << ", BRAM " << agx.total_brams << ", DSP "
              << agx.total_dsps << '\n';
    return trace_harness.finish();
}
