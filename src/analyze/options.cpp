#include "analyze/options.hpp"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "analyze/sanitize.hpp"
#include "analyze/sarif.hpp"
#include "core/option_parser.hpp"

namespace altis::analyze {

void add_sanitize_options(OptionParser& opts) {
    opts.add_option("sanitize", "",
                    "lint the run's command graph: off | warn | error "
                    "(default $ALTIS_SANITIZE)");
    opts.add_option("sanitize-json", "", "write sanitize findings as JSON");
    opts.add_option("sanitize-sarif", "",
                    "write sanitize findings as SARIF v2.1.0");
    opts.add_option("sanitize-baseline", "",
                    "baseline file: listed fingerprints demote to notes");
}

options options::from(const OptionParser& opts) {
    options o;
    std::string name = opts.get_string("sanitize");
    if (name.empty())
        if (const char* env = std::getenv("ALTIS_SANITIZE")) name = env;
    if (name.empty() || name == "off")
        o.lv = level::off;
    else if (name == "warn")
        o.lv = level::warn;
    else if (name == "error")
        o.lv = level::error;
    else
        throw OptionError("--sanitize: unknown level '" + name +
                          "' (off | warn | error)");
    o.json_path = opts.get_string("sanitize-json");
    o.sarif_path = opts.get_string("sanitize-sarif");
    o.baseline_path = opts.get_string("sanitize-baseline");
    // Asking for an output file means asking for the analysis: run at warn
    // so a clean tree still yields a valid empty document, not no file.
    if (o.lv == level::off && (!o.json_path.empty() || !o.sarif_path.empty()))
        o.lv = level::warn;
    return o;
}

int finish(const recorder& rec, const options& opt, std::ostream& out,
           std::ostream& err, const span_sink& sink) {
    report r = run_all(rec);
    if (!opt.baseline_path.empty()) {
        std::ifstream bf(opt.baseline_path);
        if (!bf) {
            err << "error: cannot read " << opt.baseline_path << "\n";
            return 2;
        }
        std::ostringstream text;
        text << bf.rdbuf();
        r = apply_baseline(r, parse_baseline(text.str()));
    }
    r.render_text(out);
    if (sink)
        for (const finding& f : r.findings()) sink(f);
    if (!opt.json_path.empty()) {
        std::ofstream f(opt.json_path);
        if (!f) {
            err << "error: cannot write " << opt.json_path << "\n";
            return 2;
        }
        r.render_json(f);
    }
    if (!opt.sarif_path.empty()) {
        std::ofstream f(opt.sarif_path);
        if (!f) {
            err << "error: cannot write " << opt.sarif_path << "\n";
            return 2;
        }
        render_sarif(r, f);
    }
    return opt.lv == level::error && r.count_at_least(severity::warning) > 0
               ? 1
               : 0;
}

}  // namespace altis::analyze
