#include "sycl/pipe.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace syclite {
namespace {

TEST(Pipe, FifoOrderSingleThread) {
    pipe<int> p(4);
    p.write(1);
    p.write(2);
    p.write(3);
    EXPECT_EQ(p.read(), 1);
    EXPECT_EQ(p.read(), 2);
    p.write(4);
    EXPECT_EQ(p.read(), 3);
    EXPECT_EQ(p.read(), 4);
}

TEST(Pipe, TryVariantsRespectCapacity) {
    pipe<int> p(2);
    EXPECT_TRUE(p.try_write(1));
    EXPECT_TRUE(p.try_write(2));
    EXPECT_FALSE(p.try_write(3));  // full
    int v = 0;
    EXPECT_TRUE(p.try_read(v));
    EXPECT_EQ(v, 1);
    EXPECT_TRUE(p.try_read(v));
    EXPECT_FALSE(p.try_read(v));  // empty
}

TEST(Pipe, ZeroCapacityRejected) {
    EXPECT_THROW(pipe<int>(0), std::invalid_argument);
}

TEST(Pipe, ProducerConsumerTransfersEverythingInOrder) {
    constexpr int kN = 20000;
    pipe<int> p(8);  // small capacity forces frequent blocking
    std::vector<int> received;
    received.reserve(kN);
    std::thread consumer([&] {
        for (int i = 0; i < kN; ++i) received.push_back(p.read());
    });
    for (int i = 0; i < kN; ++i) p.write(i);
    consumer.join();
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kN));
    for (int i = 0; i < kN; ++i) ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Pipe, CapacityAccessor) {
    pipe<float> p(32);
    EXPECT_EQ(p.capacity(), 32u);
}

}  // namespace
}  // namespace syclite
