# Empty compiler generated dependencies file for fpga_migration.
# This may be replaced when dependencies are built.
