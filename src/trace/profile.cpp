#include "trace/profile.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "core/report.hpp"

namespace altis::trace {

const char* to_string(bound_by b) {
    switch (b) {
        case bound_by::compute: return "compute";
        case bound_by::bandwidth: return "bandwidth";
        case bound_by::latency: return "latency";
        case bound_by::unknown: return "unknown";
    }
    return "?";
}

namespace {

/// Sustained walls the classification compares against; mirrors the rooflines
/// the kernel-time models are built on (Table 2 peaks x efficiency knobs).
void device_walls(const perf::device_spec& dev, double& peak_gflops,
                  double& peak_gbs) {
    double tflops = dev.peak_fp32_tflops;
    if (dev.is_fpga() && tflops <= 0.0)
        tflops = dev.fpga_peak_fp32_tflops(dev.fmax_mhz);
    peak_gflops = tflops * 1e3 * dev.compute_efficiency;
    peak_gbs = dev.mem_bw_gbs * dev.mem_efficiency;
}

}  // namespace

profile_report build_profile(const session& s) {
    profile_report p;
    p.session_name = s.name();
    p.kernel_ns = s.kernel_ns();
    p.non_kernel_ns = s.non_kernel_ns();
    if (s.device() != nullptr) {
        p.device = s.device()->name;
        device_walls(*s.device(), p.peak_gflops, p.peak_gbs);
    }

    struct accum {
        double invocations = 0.0, total_ns = 0.0;
        double flops = 0.0, bytes = 0.0;
        bool in_dataflow = false;
    };
    std::map<std::string, accum> by_name;
    for (const auto& sp : s.spans()) {
        if (sp.kind != span_kind::kernel) continue;
        accum& a = by_name[sp.name];
        a.invocations += sp.counters.invocations;
        a.total_ns += sp.duration_ns();
        a.flops += sp.counters.flops;
        a.bytes += sp.counters.bytes;
        if (sp.track != 0) a.in_dataflow = true;
        p.kernel_span_ns += sp.duration_ns();
    }

    for (const auto& [name, a] : by_name) {
        kernel_profile k;
        k.name = name;
        k.invocations = a.invocations;
        k.total_ns = a.total_ns;
        k.mean_ns = a.invocations > 0.0 ? a.total_ns / a.invocations : 0.0;
        k.pct_of_kernel =
            p.kernel_span_ns > 0.0 ? a.total_ns / p.kernel_span_ns : 0.0;
        k.gbs = a.total_ns > 0.0 ? a.bytes / a.total_ns : 0.0;
        k.gflops = a.total_ns > 0.0 ? a.flops / a.total_ns : 0.0;
        k.in_dataflow = a.in_dataflow;
        if (!p.device.empty() && p.peak_gflops > 0.0 && p.peak_gbs > 0.0) {
            k.compute_utilization = k.gflops / p.peak_gflops;
            k.memory_utilization = k.gbs / p.peak_gbs;
            // Far from both walls the roofline says nothing: launch latency
            // or pipeline depth is what the kernel is actually paying for.
            if (k.compute_utilization < 0.05 && k.memory_utilization < 0.05)
                k.bound = bound_by::latency;
            else
                k.bound = k.compute_utilization >= k.memory_utilization
                              ? bound_by::compute
                              : bound_by::bandwidth;
        }
        p.kernels.push_back(std::move(k));
    }
    std::sort(p.kernels.begin(), p.kernels.end(),
              [](const kernel_profile& a, const kernel_profile& b) {
                  return a.total_ns > b.total_ns;
              });
    return p;
}

void render_profile(const profile_report& p, std::ostream& out) {
    out << "Per-kernel profile";
    if (!p.device.empty()) out << " on " << p.device;
    out << " (simulated timeline)\n";
    Table t({"Kernel", "Calls", "Total [ms]", "Mean [us]", "% kernel",
             "GB/s", "GFLOP/s", "Bound by"});
    for (const auto& k : p.kernels) {
        std::string bound = to_string(k.bound);
        if (k.in_dataflow) bound += " (dataflow)";
        t.add_row({k.name, Table::num(k.invocations, 0),
                   Table::num(k.total_ns / 1e6, 3),
                   Table::num(k.mean_ns / 1e3, 3),
                   Table::percent(k.pct_of_kernel), Table::num(k.gbs, 1),
                   Table::num(k.gflops, 1), bound});
    }
    t.print(out);
    out << "kernel: " << Table::num(p.kernel_ns / 1e6, 3)
        << " ms, non-kernel: " << Table::num(p.non_kernel_ns / 1e6, 3)
        << " ms";
    if (p.kernel_span_ns > p.kernel_ns * (1.0 + 1e-9))
        out << " (dataflow overlap: " << Table::num(p.kernel_span_ns / 1e6, 3)
            << " ms of kernel spans compressed into "
            << Table::num(p.kernel_ns / 1e6, 3) << " ms of wall time)";
    out << "\n";
}

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            default: out << c;
        }
    }
    out << '"';
}

}  // namespace

void write_profile_json(const profile_report& p, std::ostream& out) {
    out << "{\n  \"session\": ";
    write_escaped(out, p.session_name);
    out << ",\n  \"device\": ";
    write_escaped(out, p.device);
    out << ",\n  \"peak_gflops\": " << p.peak_gflops
        << ",\n  \"peak_gbs\": " << p.peak_gbs
        << ",\n  \"kernel_ns\": " << p.kernel_ns
        << ",\n  \"non_kernel_ns\": " << p.non_kernel_ns
        << ",\n  \"kernel_span_ns\": " << p.kernel_span_ns
        << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < p.kernels.size(); ++i) {
        const kernel_profile& k = p.kernels[i];
        out << "    {\"name\": ";
        write_escaped(out, k.name);
        out << ", \"invocations\": " << k.invocations
            << ", \"total_ns\": " << k.total_ns << ", \"mean_ns\": " << k.mean_ns
            << ", \"pct_of_kernel\": " << k.pct_of_kernel
            << ", \"gbs\": " << k.gbs << ", \"gflops\": " << k.gflops
            << ", \"compute_utilization\": " << k.compute_utilization
            << ", \"memory_utilization\": " << k.memory_utilization
            << ", \"bound_by\": ";
        write_escaped(out, to_string(k.bound));
        out << ", \"in_dataflow\": " << (k.in_dataflow ? "true" : "false")
            << "}" << (i + 1 < p.kernels.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
}

}  // namespace altis::trace
