// Completed- or pending-command handle with simulated profiling timestamps.
// Kernel events carry the kernel's descriptor name; transfer/overhead events
// carry the empty string -- queue::events() is a self-describing command log
// even without a trace session attached.
//
// On in-order queues an event is always complete by the time the caller
// holds it and wait() is a no-op. On out-of-order queues (queue_property::
// out_of_order) the event additionally references its command node in the
// queue's graph scheduler: wait() becomes a targeted graph join that runs or
// awaits the node and -- through the graph's edges -- everything it depends
// on, without draining unrelated commands. The simulated timestamps are
// final either way: the scheduler assigns them deterministically at submit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace syclite {

namespace graph {
class scheduler_state;
}  // namespace graph

class event {
public:
    event() = default;
    event(double submit_ns, double start_ns, double end_ns,
          std::string name = {})
        : name_(std::move(name)),
          submit_ns_(submit_ns),
          start_ns_(start_ns),
          end_ns_(end_ns) {}
    /// Graph-command event (out-of-order queues): keeps the scheduler state
    /// alive so wait() works even after the owning queue advanced epochs.
    event(double submit_ns, double start_ns, double end_ns, std::string name,
          std::uint64_t cmd, std::shared_ptr<graph::scheduler_state> graph)
        : name_(std::move(name)),
          submit_ns_(submit_ns),
          start_ns_(start_ns),
          end_ns_(end_ns),
          cmd_(cmd),
          graph_(std::move(graph)) {}

    /// Kernel name from perf::kernel_stats; empty for transfers/overhead.
    [[nodiscard]] const std::string& name() const { return name_; }

    /// Analogue of info::event_profiling::command_submit/start/end.
    [[nodiscard]] double profiling_submit_ns() const { return submit_ns_; }
    [[nodiscard]] double profiling_start_ns() const { return start_ns_; }
    [[nodiscard]] double profiling_end_ns() const { return end_ns_; }
    [[nodiscard]] double duration_ns() const { return end_ns_ - start_ns_; }

    /// Graph command id (0: in-order command, complete on construction).
    /// handler::depends_on uses it to add an explicit edge.
    [[nodiscard]] std::uint64_t command_id() const { return cmd_; }

    /// Scheduler state of the graph that produced this command (null for
    /// in-order events). Command ids are per-scheduler counters, so an id is
    /// only meaningful together with this handle: handler::depends_on keeps
    /// both, and the queue resolves same-graph ids as edges while waiting on
    /// foreign-graph events instead of misattaching their ids.
    [[nodiscard]] const std::shared_ptr<graph::scheduler_state>& graph_state()
        const {
        return graph_;
    }

    /// In-order commands: no-op (execution was synchronous). Graph commands:
    /// functional join of this node and, transitively, its dependencies --
    /// the calling thread helps run ready nodes. Errors stay queued for the
    /// owning queue's wait()/throw_asynchronous(), mirroring SYCL's
    /// asynchronous delivery contract. Defined in graph.cpp.
    void wait() const;

private:
    std::string name_;
    double submit_ns_ = 0.0;
    double start_ns_ = 0.0;
    double end_ns_ = 0.0;
    std::uint64_t cmd_ = 0;
    std::shared_ptr<graph::scheduler_state> graph_;
};

}  // namespace syclite
