#include "sycl/syclite.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "analyze/sanitize.hpp"
#include "mem/pool.hpp"

namespace syclite {
namespace {

TEST(Usm, HostAllocationSucceedsOnGpu) {
    queue q("rtx_2080");
    float* p = malloc_host<float>(128, q);
    ASSERT_NE(p, nullptr);
    p[0] = 1.5f;
    p[127] = 2.5f;
    EXPECT_FLOAT_EQ(p[0] + p[127], 4.0f);
    usm_free(p, q);
}

// Paper Sec. 3.2.1: sycl::malloc_host queries to both Stratix 10 and Agilex
// always return nullptr -- USM had to be removed from Altis-SYCL.
TEST(Usm, FpgaBoardsReturnNull) {
    for (const char* name : {"stratix_10", "agilex"}) {
        queue q(name);
        EXPECT_EQ(malloc_host<float>(16, q), nullptr) << name;
        EXPECT_EQ(malloc_device<float>(16, q), nullptr) << name;
        EXPECT_EQ(malloc_shared<float>(16, q), nullptr) << name;
    }
}

TEST(Usm, SharedAndDeviceAllocationsOnCpuAndGpus) {
    for (const char* name : {"xeon_6128", "a100", "max_1100"}) {
        queue q(name);
        double* p = malloc_shared<double>(8, q);
        ASSERT_NE(p, nullptr) << name;
        usm_free(p, q);
    }
}

TEST(MemAdvise, DeviceDependentValidity) {
    queue gpu("a100");
    double* p = malloc_shared<double>(8, gpu);
    ASSERT_NE(p, nullptr);
    EXPECT_NO_THROW(mem_advise(gpu, p, 64, mem_advice::read_mostly));
    EXPECT_NO_THROW(mem_advise(gpu, p, 64, mem_advice::preferred_location));
    usm_free(p, gpu);

    queue cpu("xeon_6128");
    double* pc = malloc_shared<double>(8, cpu);
    EXPECT_NO_THROW(mem_advise(cpu, pc, 64, mem_advice::read_mostly));
    EXPECT_THROW(mem_advise(cpu, pc, 64, mem_advice::preferred_location),
                 std::runtime_error);
    usm_free(pc, cpu);
}

TEST(MemAdvise, NullPointerRejected) {
    queue q("a100");
    EXPECT_THROW(mem_advise(q, nullptr, 64, mem_advice::read_mostly),
                 std::invalid_argument);
}

TEST(MemAdvise, FpgaRejectsAdvise) {
    queue q("stratix_10");
    int dummy = 0;
    EXPECT_THROW(mem_advise(q, &dummy, 4, mem_advice::read_mostly),
                 std::runtime_error);
}

// ---- altis::mem-backed USM ----

TEST(Usm, ZeroCountAllocationsAreUniqueNonNullAndFreeable) {
    queue q("rtx_2080");
    float* a = malloc_device<float>(0, q);
    float* b = malloc_device<float>(0, q);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);  // unique identity: the alloc/free pairing stays 1:1
    usm_free(a, q);
    usm_free(b, q);
}

TEST(Usm, ZeroCountAllocationRaisesNoSanitizerFinding) {
    altis::analyze::recorder rec;
    {
        altis::analyze::recorder::scope scope(rec);
        queue q("rtx_2080");
        float* p = malloc_device<float>(0, q);
        ASSERT_NE(p, nullptr);
        usm_free(p, q);
    }
    const altis::analyze::report r = altis::analyze::run_all(rec);
    for (const auto& f : r.findings())
        EXPECT_NE(f.rule, "ALS-H4") << f.message;
}

TEST(Usm, AllocationsAreSixtyFourByteAligned) {
    queue q("rtx_2080");
    char* p = malloc_host<char>(100, q);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
    usm_free(p, q);
}

TEST(Usm, RecycledAddressCarriesAFreshGeneration) {
    queue q("rtx_2080");
    float* a = malloc_device<float>(64, q);
    const std::uint64_t g1 = altis::mem::generation_of(a);
    usm_free(a, q);
    float* b = malloc_device<float>(64, q);
    EXPECT_EQ(b, a);  // pool recycles the block...
    EXPECT_GT(altis::mem::generation_of(b), g1);  // ...under a new identity
    usm_free(b, q);
}

}  // namespace
}  // namespace syclite
