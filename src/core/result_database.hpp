// Altis-style result database: collects named metric samples across trials
// and derives summary statistics. Mirrors the ResultDatabase shipped with the
// original Altis/SHOC suites, which every Level-2 application reports into.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace altis {

/// One metric series: all trial values recorded under (test, attributes, unit).
struct Result {
    std::string test;   ///< metric name, e.g. "kernel_time"
    std::string atts;   ///< free-form attributes, e.g. "size=3,device=stratix10"
    std::string unit;   ///< e.g. "ms", "GB/s"
    std::vector<double> values;

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double median() const;
    [[nodiscard]] double stddev() const;
    /// Fraction of trials flagged as failed (recorded as FLT_MAX in Altis).
    [[nodiscard]] double error_fraction() const;

    /// Sentinel recorded for a failed trial, as in the original suite.
    static double failure_sentinel();
};

/// Per-configuration outcome from the resilient sweep harness: whether a
/// config ran clean, needed retries, failed (with the error string), or was
/// skipped. Failure is data, not a crash -- the sweep completes and the
/// report says exactly which configs degraded (cf. HPCC-FPGA's per-benchmark
/// validation).
struct RunOutcome {
    std::string config;  ///< e.g. "KMeans/fpga_opt/stratix_10/size2"
    /// "ok" | "retried" | "failed" | "skipped", plus the supervisor's
    /// "deadline" | "cancelled" | "quarantined" (see resilience::supervisor).
    std::string status;
    int attempts = 1;
    std::string error;  ///< last error / skip reason; empty when ok
};

/// Accumulates results over trials; used by every benchmark harness binary.
class ResultDatabase {
public:
    /// Record one sample. Samples with identical (test, atts, unit) aggregate
    /// into the same series.
    void add_result(const std::string& test, const std::string& atts,
                    const std::string& unit, double value);

    /// Record a failed trial for the series (counts toward error_fraction).
    void add_failure(const std::string& test, const std::string& atts,
                     const std::string& unit);

    /// Record a sweep outcome (see RunOutcome). Outcomes ride along with the
    /// metric series through every dump format.
    void add_outcome(RunOutcome outcome);

    [[nodiscard]] const std::vector<Result>& results() const { return results_; }
    [[nodiscard]] const std::vector<RunOutcome>& outcomes() const {
        return outcomes_;
    }
    /// True when no recorded outcome is "failed".
    [[nodiscard]] bool all_outcomes_ok() const;

    /// Append every series (and outcome) of `other` into this database.
    void merge(const ResultDatabase& other);

    /// Find a series; returns nullptr if absent.
    [[nodiscard]] const Result* find(const std::string& test,
                                     const std::string& atts) const;

    /// Geometric mean over the means of every series whose test name matches.
    /// Non-positive means are skipped (they would poison the logarithm).
    [[nodiscard]] double geomean(const std::string& test) const;

    /// Human-readable summary table (min/max/mean/median/stddev per series),
    /// followed by the outcome log when any outcomes were recorded.
    void dump_summary(std::ostream& out) const;
    /// Machine-readable CSV: test,atts,unit,trial0,trial1,...
    void dump_csv(std::ostream& out) const;
    /// Machine-readable JSON. Without outcomes: the historical array of
    /// {test, atts, unit, values, mean, median, stddev}. With outcomes: an
    /// object {"results": [...], "outcomes": [...]} so degraded sweeps stay
    /// well-formed, self-describing reports. Strings are escaped; failed
    /// trials appear as null.
    void dump_json(std::ostream& out) const;

    void clear() {
        results_.clear();
        outcomes_.clear();
    }

private:
    Result& series(const std::string& test, const std::string& atts,
                   const std::string& unit);
    std::vector<Result> results_;
    std::vector<RunOutcome> outcomes_;
};

}  // namespace altis
