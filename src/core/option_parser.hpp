// Minimal command-line option parser modeled on the one Altis ships: every
// benchmark binary accepts `--size {1,2,3}`, `--device <name>`, `--passes N`
// plus app-specific options registered by the harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace altis {

class OptionError : public std::runtime_error {
    using std::runtime_error::runtime_error;
};

class OptionParser {
public:
    /// Register an option before parse(). `long_name` without leading dashes.
    void add_option(const std::string& long_name, const std::string& default_value,
                    const std::string& help);
    void add_flag(const std::string& long_name, const std::string& help);

    /// Parses argv. Throws OptionError on unknown options or missing values.
    /// Returns false if --help was requested (usage already printed to out).
    bool parse(int argc, const char* const* argv, std::ostream& out);

    [[nodiscard]] std::string get_string(const std::string& name) const;
    [[nodiscard]] std::int64_t get_int(const std::string& name) const;
    [[nodiscard]] double get_double(const std::string& name) const;
    [[nodiscard]] bool get_flag(const std::string& name) const;

    /// Positional arguments left over after option parsing.
    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }

    void print_usage(std::ostream& out) const;

private:
    struct Option {
        std::string name;
        std::string value;
        std::string help;
        bool is_flag = false;
        bool seen = false;
    };
    Option* find(const std::string& name);
    const Option* find(const std::string& name) const;

    std::vector<Option> options_;
    std::vector<std::string> positional_;
};

/// Registers the options every Altis binary shares (--size, --device,
/// --passes, --verbose, --quiet).
void add_standard_options(OptionParser& parser);

}  // namespace altis
