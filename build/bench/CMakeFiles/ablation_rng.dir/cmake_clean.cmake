file(REMOVE_RECURSE
  "CMakeFiles/ablation_rng.dir/ablation_rng.cpp.o"
  "CMakeFiles/ablation_rng.dir/ablation_rng.cpp.o.d"
  "ablation_rng"
  "ablation_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
