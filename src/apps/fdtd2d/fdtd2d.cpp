#include "apps/fdtd2d/fdtd2d.hpp"

#include <utility>

#include "apps/common/verify.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::fdtd2d {

params params::preset(int size) {
    switch (size) {
        case 1: return {256, 256, 60};
        case 2: return {512, 512, 600};
        case 3: return {1024, 1024, 3200};
        default: throw std::invalid_argument("fdtd2d: size must be 1..3");
    }
}

fields initial_fields(const params& p) {
    fields f;
    f.ex.resize(p.cells());
    f.ey.resize(p.cells());
    f.hz.resize(p.cells());
    for (std::size_t i = 0; i < p.nx; ++i)
        for (std::size_t j = 0; j < p.ny; ++j) {
            const std::size_t idx = i * p.ny + j;
            f.ex[idx] = static_cast<float>(i * (j + 1)) / static_cast<float>(p.nx);
            f.ey[idx] =
                static_cast<float>((i + 1) * (j + 2)) / static_cast<float>(p.ny);
            f.hz[idx] =
                static_cast<float>((i + 2) * (j + 3)) / static_cast<float>(p.nx);
        }
    return f;
}

namespace {

float fict(int t) { return static_cast<float>(t); }

}  // namespace

void golden(const params& p, fields& f) {
    const std::size_t nx = p.nx, ny = p.ny;
    for (int t = 0; t < p.steps; ++t) {
        for (std::size_t j = 0; j < ny; ++j) f.ey[j] = fict(t);
        for (std::size_t i = 1; i < nx; ++i)
            for (std::size_t j = 0; j < ny; ++j)
                f.ey[i * ny + j] -=
                    0.5f * (f.hz[i * ny + j] - f.hz[(i - 1) * ny + j]);
        for (std::size_t i = 0; i < nx; ++i)
            for (std::size_t j = 1; j < ny; ++j)
                f.ex[i * ny + j] -=
                    0.5f * (f.hz[i * ny + j] - f.hz[i * ny + j - 1]);
        for (std::size_t i = 0; i + 1 < nx; ++i)
            for (std::size_t j = 0; j + 1 < ny; ++j)
                f.hz[i * ny + j] -=
                    0.7f * (f.ex[i * ny + j + 1] - f.ex[i * ny + j] +
                            f.ey[(i + 1) * ny + j] - f.ey[i * ny + j]);
    }
}

namespace detail {

perf::kernel_stats stats_step(const params& p, const char* name, Variant v,
                              const perf::device_spec& dev);

}  // namespace detail

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);

    fields expected = initial_fields(p);
    golden(p, expected);

    const fields init = initial_fields(p);
    // ALTIS_OOO=1 opts into the out-of-order graph scheduler; default
    // in-order execution is unchanged (depends_on edges below are no-ops on
    // complete events).
    sl::queue q(dev, runtime_for(cfg.variant), {},
                ooo_enabled() ? sl::queue_property::out_of_order
                              : sl::queue_property::in_order);
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    // hz is double-buffered (ping-pong): each step reads hz from one buffer
    // and writes the other, so the ey and ex updates of a step carry no
    // write conflict between each other -- under the graph scheduler they
    // run concurrently, fenced only by the previous step's hz write.
    sl::buffer<float> ex(p.cells()), ey(p.cells());
    sl::buffer<float> hz_a(p.cells()), hz_b(p.cells());
    sl::buffer<float>* hz_cur = &hz_a;
    sl::buffer<float>* hz_nxt = &hz_b;
    q.copy_to_device(ex, init.ex.data());
    q.copy_to_device(ey, init.ey.data());
    q.copy_to_device(*hz_cur, init.hz.data());

    const std::size_t wg = dev.is_fpga() ? 128 : 256;
    const std::size_t nx = p.nx, ny = p.ny;

    sl::event e_hz;  // last hz update; empty before the first step
    for (int t = 0; t < p.steps; ++t) {
        sl::buffer<float>& hzr = *hz_cur;
        sl::buffer<float>& hzw = *hz_nxt;
        sl::event e_ey = q.submit([&](sl::handler& h) {  // ey (+ source row)
            h.depends_on(e_hz);
            auto aey = h.get_access(ey, sl::access_mode::read_write);
            auto ahz = h.get_access(hzr, sl::access_mode::read);
            const int tt = t;
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(nx * ny), sl::range<1>(wg)),
                detail::stats_step(p, "fdtd_ey", cfg.variant, dev),
                [=](sl::nd_item<1> it) {
                    const std::size_t idx = it.get_global_id(0);
                    const std::size_t i = idx / ny;
                    if (i == 0)
                        aey[idx] = fict(tt);
                    else
                        aey[idx] -= 0.5f * (ahz[idx] - ahz[idx - ny]);
                });
        });
        sl::event e_ex = q.submit([&](sl::handler& h) {  // update ex
            h.depends_on(e_hz);
            auto aex = h.get_access(ex, sl::access_mode::read_write);
            auto ahz = h.get_access(hzr, sl::access_mode::read);
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(nx * ny), sl::range<1>(wg)),
                detail::stats_step(p, "fdtd_ex", cfg.variant, dev),
                [=](sl::nd_item<1> it) {
                    const std::size_t idx = it.get_global_id(0);
                    if (idx % ny != 0)
                        aex[idx] -= 0.5f * (ahz[idx] - ahz[idx - 1]);
                });
        });
        e_hz = q.submit([&](sl::handler& h) {  // update hz into the other buffer
            h.depends_on(e_ey);
            h.depends_on(e_ex);
            auto aex = h.get_access(ex, sl::access_mode::read);
            auto aey = h.get_access(ey, sl::access_mode::read);
            auto ahzr = h.get_access(hzr, sl::access_mode::read);
            auto ahzw = h.get_access(hzw, sl::access_mode::discard_write);
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(nx * ny), sl::range<1>(wg)),
                detail::stats_step(p, "fdtd_hz", cfg.variant, dev),
                [=](sl::nd_item<1> it) {
                    const std::size_t idx = it.get_global_id(0);
                    const std::size_t i = idx / ny;
                    const std::size_t j = idx % ny;
                    if (i + 1 < nx && j + 1 < ny)
                        ahzw[idx] = ahzr[idx] -
                                    0.7f * (aex[idx + 1] - aex[idx] +
                                            aey[idx + ny] - aey[idx]);
                    else
                        ahzw[idx] = ahzr[idx];  // border carries over
                });
        });
        std::swap(hz_cur, hz_nxt);
    }
    q.wait();

    std::vector<float> got(p.cells());
    q.copy_from_device(*hz_cur, got.data());
    const double err = max_rel_error<float>(expected.hz, got);
    require_close(err, 1e-4, "fdtd2d hz");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    r.error = err;
    return r;
}

void register_app() {
    register_standard_app(
        "fdtd2d", "2D Maxwell solver (FDTD); Fig. 1 time decomposition app",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::fdtd2d
