// XORWOW generator -- the default engine of cuRAND, used by the original
// CUDA Raytracing in Altis (paper Sec. 3.3). Marsaglia's xorwow recurrence
// with a Weyl counter, matching the cuRAND XORWOW sequence for a directly
// initialized state.
//
// Seeding note: cuRAND's curand_init performs an unpublished state scramble;
// we document and use a splitmix64-based fill instead, so streams differ
// from cuRAND for the same seed even though the recurrence is identical.
#pragma once

#include <cstdint>

namespace altis::rng {

class xorwow {
public:
    /// Directly initialized state (for known-answer tests).
    struct state {
        std::uint32_t x, y, z, w, v, d;
    };

    explicit xorwow(std::uint64_t seed) { seed_state(seed); }
    explicit xorwow(const state& s) : s_(s) {}

    /// Next 32-bit draw: Marsaglia xorwow + Weyl sequence (matches cuRAND).
    std::uint32_t next_u32() {
        std::uint32_t t = s_.x ^ (s_.x >> 2);
        s_.x = s_.y;
        s_.y = s_.z;
        s_.z = s_.w;
        s_.w = s_.v;
        s_.v = (s_.v ^ (s_.v << 4)) ^ (t ^ (t << 1));
        s_.d += 362437u;
        return s_.v + s_.d;
    }

    /// Uniform in [0,1) with 24-bit resolution, like curand_uniform's scale.
    float next_float() {
        return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
    }

    double next_double() {
        const std::uint64_t hi = next_u32();
        const std::uint64_t lo = next_u32();
        return static_cast<double>((hi << 21) ^ lo) * (1.0 / 9007199254740992.0);
    }

    [[nodiscard]] const state& current_state() const { return s_; }

private:
    void seed_state(std::uint64_t seed);
    state s_{};
};

/// splitmix64 step -- also used to derive per-work-item seeds in kernels.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x);

}  // namespace altis::rng
