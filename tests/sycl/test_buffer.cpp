#include "sycl/buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace syclite {
namespace {

TEST(Buffer, CopyInFromHost) {
    std::vector<int> host{1, 2, 3};
    buffer<int> b(host.data(), host.size());
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(b.host_data()[2], 3);
}

TEST(Buffer, WritebackOnDestruction) {
    std::vector<int> host{0, 0, 0};
    {
        buffer<int> b(host.data(), host.size(), use_host_ptr);
        auto acc = b.access(access_mode::write);
        acc[0] = 7;
        acc[2] = 9;
        EXPECT_EQ(host[0], 0);  // not yet written back
    }
    EXPECT_EQ(host[0], 7);
    EXPECT_EQ(host[2], 9);
}

TEST(Buffer, NoWritebackWithoutHostPtrTag) {
    std::vector<int> host{1, 1};
    {
        buffer<int> b(static_cast<const int*>(host.data()), host.size());
        b.access(access_mode::write)[0] = 42;
    }
    EXPECT_EQ(host[0], 1);
}

TEST(Accessor, ReadsAndWritesThroughToStorage) {
    buffer<float> b(4);
    auto w = b.access(access_mode::discard_write);
    for (std::size_t i = 0; i < 4; ++i) w[i] = static_cast<float>(i) * 2.0f;
    auto r = b.access(access_mode::read);
    EXPECT_FLOAT_EQ(r[3], 6.0f);
}

TEST(Accessor, CountingDisabledByDefault) {
    buffer<int> b(8);
    auto acc = b.access(access_mode::read_write);
    for (std::size_t i = 0; i < 8; ++i) acc[i] = 1;
    EXPECT_EQ(b.access_count(), 0u);
}

TEST(Accessor, CountsAccessesWhenEnabled) {
    buffer<int> b(8);
    auto acc = b.access(access_mode::read_write);
    {
        scoped_access_counting counting;
        for (std::size_t i = 0; i < 8; ++i) acc[i] = 1;
        int sum = 0;
        for (std::size_t i = 0; i < 8; ++i) sum += acc[i];
        EXPECT_EQ(sum, 8);
    }
    EXPECT_EQ(b.access_count(), 16u);
    // Counting stops outside the scope.
    acc[0] = 2;
    EXPECT_EQ(b.access_count(), 16u);
    b.reset_access_count();
    EXPECT_EQ(b.access_count(), 0u);
}

TEST(Accessor, GetPointerMatchesHostData) {
    buffer<double> b(3);
    EXPECT_EQ(b.access(access_mode::read).get_pointer(), b.host_data());
}

// ---- altis::mem-backed storage ----

TEST(Buffer, DefaultConstructionValueInitializesLikeTheVectorItReplaced) {
    // Recycled pool blocks arrive dirty; buffer(count) must still observe
    // all-zero storage. Dirty the block first to make the memset visible.
    {
        buffer<int> dirty(256, no_init);
        for (std::size_t i = 0; i < dirty.size(); ++i)
            dirty.host_data()[i] = -1;
    }
    buffer<int> b(256);  // magazine LIFO: same block as `dirty`
    for (std::size_t i = 0; i < b.size(); ++i)
        ASSERT_EQ(b.host_data()[i], 0) << i;
}

TEST(Buffer, StorageIsSixtyFourByteAligned) {
    buffer<float> b(100);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.host_data()) % 64, 0u);
}

TEST(Buffer, ZeroSizeBufferHasUniqueNonNullStorage) {
    buffer<int> a(0);
    buffer<int> b(0);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_NE(a.host_data(), nullptr);
    EXPECT_NE(b.host_data(), nullptr);
    EXPECT_NE(a.host_data(), b.host_data());
}

TEST(Buffer, ZeroSizeHostPtrBufferSkipsCopyAndWriteback) {
    int sentinel = 42;
    { buffer<int> b(&sentinel, 0, use_host_ptr); }
    EXPECT_EQ(sentinel, 42);
}

TEST(Buffer, NoInitSkipsZeroFillButStaysWritable) {
    buffer<int> b(1024, no_init);  // contents unspecified; must be usable
    for (std::size_t i = 0; i < b.size(); ++i)
        b.host_data()[i] = static_cast<int>(i);
    EXPECT_EQ(b.host_data()[1023], 1023);
}

TEST(Buffer, NonTrivialElementsAreConstructedAndDestroyed) {
    static int live = 0;
    struct probe {
        probe() { ++live; }
        probe(const probe&) { ++live; }
        ~probe() { --live; }
    };
    {
        buffer<probe> b(16);
        EXPECT_EQ(live, 16);
        buffer<probe> raw(8, no_init);  // non-trivial: still constructed
        EXPECT_EQ(live, 24);
    }
    EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace syclite
