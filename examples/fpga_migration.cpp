// FPGA migration walkthrough: retraces the paper's Sec. 4-5 journey on the
// Where application, printing time / resources / Fmax after every step:
//
//   step 0  GPU-optimized SYCL on the RTX 2080 (the starting point)
//   step 1  same ND-Range kernels, first FPGA bitstream (Sec. 4 refactor)
//   step 2  + [[intel::kernel_args_restrict]] on the kernels (Sec. 5.1)
//   step 3  + custom Single-Task prefix sum, Listing 2 (Sec. 5.3)
//   step 4  + compute-unit replication 20x / 2x (Sec. 5.1/5.5)
//
// Build & run:   ./examples/fpga_migration
#include <iostream>

#include "apps/common/app.hpp"
#include "apps/where/where.hpp"
#include "core/report.hpp"
#include "perf/resource_model.hpp"
#include "scan/scan.hpp"

namespace {

using altis::Table;
using altis::Variant;
namespace apps = altis::apps;
namespace perf = altis::perf;

void report_step(Table& t, const char* step, const apps::timed_region& region,
                 const perf::device_spec& dev, perf::runtime_kind rt) {
    const auto est = apps::simulate_region(region, dev, rt);
    std::string alm = "-", fmax = "-", fits = "-";
    if (dev.is_fpga()) {
        const auto u = perf::estimate_design_resources(region.all_kernels(), dev);
        alm = Table::percent(u.alm_frac);
        fmax = Table::num(u.fmax_mhz, 0);
        fits = u.fits ? "yes" : "NO";
    }
    t.add_row({step, dev.display, Table::num(est.total_ms(), 2), alm, fmax,
               fits});
}

}  // namespace

int main() {
    constexpr int kSize = 2;
    const auto& rtx = perf::device_by_name("rtx_2080");
    const auto& s10 = perf::device_by_name("stratix_10");

    std::cout << "Migrating `Where` from GPU-optimized SYCL to an optimized "
                 "Stratix 10 design (size "
              << kSize << ")\n\n";
    Table t({"Step", "Device", "Total [ms]", "ALM", "Fmax [MHz]", "Fits"});

    // Step 0: the GPU-optimized SYCL version.
    report_step(t, "0: sycl_opt on GPU",
                apps::where::region(Variant::sycl_opt, rtx, kSize), rtx,
                perf::runtime_kind::sycl);

    // Step 1: first working FPGA bitstream (ND-Range, oneDPL-shaped scan).
    report_step(t, "1: fpga_base (Sec. 4)",
                apps::where::region(Variant::fpga_base, s10, kSize), s10,
                perf::runtime_kind::sycl);

    // Step 2: restrict-qualify the kernel arguments; keep everything else.
    {
        auto region = apps::where::region(Variant::fpga_base, s10, kSize);
        for (auto& slot : region.kernels) slot.stats.args_restrict = true;
        report_step(t, "2: + kernel_args_restrict", region, s10,
                    perf::runtime_kind::sycl);
    }

    // Step 3: swap the scan for the custom Single-Task kernel (Listing 2),
    // which also drops the oneDPL library overhead.
    {
        auto region = apps::where::region(Variant::fpga_base, s10, kSize);
        for (auto& slot : region.kernels) {
            slot.stats.args_restrict = true;
            if (slot.stats.name == "scan_onedpl")
                slot.stats = altis::scan::stats_scan_fpga_custom(
                    apps::where::params::preset(kSize).n);
        }
        region.extra_non_kernel_ns = 0.0;
        report_step(t, "3: + Listing-2 scan", region, s10,
                    perf::runtime_kind::sycl);
    }

    // Step 4: the full fpga_opt tuning (replication 20x mark / 2x scatter).
    report_step(t, "4: fpga_opt (Sec. 5.5)",
                apps::where::region(Variant::fpga_opt, s10, kSize), s10,
                perf::runtime_kind::sycl);

    t.print(std::cout);

    std::cout << "\nEvery step is also functionally runnable; run the "
                 "endpoints with verification:\n";
    for (const Variant v : {Variant::fpga_base, Variant::fpga_opt}) {
        altis::RunConfig cfg;
        cfg.size = 1;  // functional runs use the small preset
        cfg.device = "stratix_10";
        cfg.variant = v;
        const auto r = apps::where::run(cfg);
        std::cout << "  " << to_string(v)
                  << ": verified, simulated total " << r.total_ms << " ms\n";
    }
    return 0;
}
