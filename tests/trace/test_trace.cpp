// Span model, session bookkeeping and queue emission: ordering/nesting on
// the simulated clock, dataflow overlap, and agreement between the trace's
// aggregates and the queue's own two-counter decomposition.
#include "trace/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/common/region.hpp"
#include "apps/kmeans/kmeans.hpp"
#include "sycl/syclite.hpp"

namespace altis::trace {
namespace {

perf::kernel_stats named_stats(const char* name) {
    perf::kernel_stats k;
    k.name = name;
    k.fp32_ops = 4.0;
    k.bytes_read = 8.0;
    k.bytes_written = 4.0;
    return k;
}

TEST(Session, RegionsNestAndRecordOnClose) {
    session s("t");
    s.begin_region("outer", 0.0);
    s.begin_region("inner", 10.0);
    EXPECT_EQ(s.open_regions(), 2);
    s.end_region(50.0);  // closes inner
    s.end_region(100.0);
    ASSERT_EQ(s.spans().size(), 2u);
    EXPECT_EQ(s.spans()[0].name, "inner");
    EXPECT_EQ(s.spans()[1].name, "outer");
    // Nesting on the clock: inner is contained in outer.
    EXPECT_GE(s.spans()[0].start_ns, s.spans()[1].start_ns);
    EXPECT_LE(s.spans()[0].end_ns, s.spans()[1].end_ns);
    EXPECT_THROW(s.end_region(0.0), std::logic_error);
}

TEST(Session, CurrentIsScoped) {
    EXPECT_EQ(session::current(), nullptr);
    {
        session a("a");
        session::scope sa(a);
        EXPECT_EQ(session::current(), &a);
        {
            session b("b");
            session::scope sb(b);
            EXPECT_EQ(session::current(), &b);
        }
        EXPECT_EQ(session::current(), &a);
    }
    EXPECT_EQ(session::current(), nullptr);
}

TEST(QueueTrace, KernelSpansAreNamedOrderedAndSumToKernelNs) {
    session s("t");
    session::scope scope(s);
    syclite::queue q("rtx_2080");
    syclite::buffer<int> b(256);
    for (const char* name : {"alpha", "beta", "alpha"}) {
        q.submit([&](syclite::handler& h) {
            auto acc = h.get_access(b, syclite::access_mode::discard_write);
            h.parallel_for(syclite::nd_range<1>(syclite::range<1>(256),
                                                syclite::range<1>(64)),
                           named_stats(name), [=](syclite::nd_item<1> it) {
                               acc[it.get_global_id(0)] = 1;
                           });
        });
    }
    q.wait();

    ASSERT_EQ(s.device(), &q.device());
    std::vector<std::string> kernel_names;
    double prev_end = 0.0;
    for (const auto& sp : s.spans()) {
        // Main-lane spans tile the simulated clock without gaps or overlap.
        EXPECT_NEAR(sp.start_ns, prev_end, 1e-9);
        EXPECT_GE(sp.end_ns, sp.start_ns);
        prev_end = sp.end_ns;
        if (sp.kind == span_kind::kernel) kernel_names.push_back(sp.name);
    }
    EXPECT_EQ(kernel_names, (std::vector<std::string>{"alpha", "beta", "alpha"}));
    EXPECT_NEAR(s.kernel_ns(), q.kernel_ns(), 1e-9);
    EXPECT_NEAR(s.non_kernel_ns(), q.non_kernel_ns(), 1e-9);
    EXPECT_NEAR(s.last_end_ns(), q.sim_now_ns(), 1e-9);
}

TEST(QueueTrace, KernelSpanCarriesModelCounters) {
    session s("t");
    session::scope scope(s);
    syclite::queue q("a100");
    syclite::buffer<int> b(128);
    perf::kernel_stats k = named_stats("counted");
    k.occupancy = 0.5;
    k.divergence = 0.25;
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::discard_write);
        h.parallel_for(
            syclite::nd_range<1>(syclite::range<1>(128), syclite::range<1>(64)),
            k, [=](syclite::nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    const auto it = std::find_if(
        s.spans().begin(), s.spans().end(),
        [](const span& sp) { return sp.kind == span_kind::kernel; });
    ASSERT_NE(it, s.spans().end());
    EXPECT_EQ(it->name, "counted");
    EXPECT_DOUBLE_EQ(it->counters.flops, 4.0 * 128.0);
    EXPECT_DOUBLE_EQ(it->counters.bytes, 12.0 * 128.0);
    EXPECT_DOUBLE_EQ(it->counters.occupancy, 0.5);
    EXPECT_DOUBLE_EQ(it->counters.divergence, 0.25);
}

TEST(QueueTrace, TransferSetupAndOverheadBecomeTypedSpans) {
    session s("t");
    session::scope scope(s);
    syclite::queue q("rtx_2080");
    q.charge_setup();
    std::vector<float> host(1024, 1.0f);
    syclite::buffer<float> b(host.size());
    q.copy_to_device(b, host.data());
    q.annotate_overhead_ns(500.0);
    q.wait();

    ASSERT_EQ(s.spans().size(), 4u);
    EXPECT_EQ(s.spans()[0].kind, span_kind::setup);
    EXPECT_EQ(s.spans()[1].kind, span_kind::transfer);
    EXPECT_DOUBLE_EQ(s.spans()[1].counters.bytes, 4096.0);
    EXPECT_EQ(s.spans()[2].kind, span_kind::overhead);
    EXPECT_DOUBLE_EQ(s.spans()[2].duration_ns(), 500.0);
    EXPECT_EQ(s.spans()[3].kind, span_kind::sync);
    EXPECT_NEAR(s.non_kernel_ns(), q.non_kernel_ns(), 1e-9);
}

TEST(QueueTrace, DataflowSpansOverlapOnSeparateLanes) {
    session s("t");
    session::scope scope(s);
    syclite::queue q("stratix_10");
    syclite::buffer<int> out(100);
    syclite::pipe<int> p(16);
    q.begin_dataflow();
    q.submit([&](syclite::handler& h) {
        perf::kernel_stats k = named_stats("producer");
        k.writes_pipe = true;
        perf::loop_info loop;
        loop.trip_count = 1e6;
        k.loops.push_back(loop);
        h.single_task(k, [&p]() {
            for (int i = 0; i < 100; ++i) p.write(i);
        });
    });
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(out, syclite::access_mode::discard_write);
        perf::kernel_stats k = named_stats("consumer");
        k.reads_pipe = true;
        perf::loop_info loop;
        loop.trip_count = 100;
        k.loops.push_back(loop);
        h.single_task(k, [&p, acc]() {
            for (int i = 0; i < 100; ++i) acc[i] = p.read();
        });
    });
    q.end_dataflow();

    const span* group = nullptr;
    std::vector<const span*> kernels;
    for (const auto& sp : s.spans()) {
        if (sp.kind == span_kind::dataflow_group) group = &sp;
        if (sp.kind == span_kind::kernel) kernels.push_back(&sp);
    }
    ASSERT_NE(group, nullptr);
    ASSERT_EQ(kernels.size(), 2u);
    EXPECT_EQ(group->name, "dataflow:producer:consumer");
    // Overlap: both kernels launch together on distinct lanes inside the
    // group envelope; the envelope ends with the slowest member.
    EXPECT_DOUBLE_EQ(kernels[0]->start_ns, kernels[1]->start_ns);
    EXPECT_NE(kernels[0]->track, kernels[1]->track);
    EXPECT_GT(kernels[0]->track, 0);
    const double slowest =
        std::max(kernels[0]->end_ns, kernels[1]->end_ns);
    EXPECT_DOUBLE_EQ(group->end_ns, slowest);
    // The queue's kernel counter is the group wall, not the lane sum.
    EXPECT_NEAR(s.kernel_ns(), q.kernel_ns(), 1e-9);
    EXPECT_LE(q.kernel_ns() + 1e-9,
              kernels[0]->duration_ns() + kernels[1]->duration_ns());
}

TEST(QueueTrace, SecondQueueAppendsAfterFirst) {
    session s("t");
    session::scope scope(s);
    double first_end = 0.0;
    {
        syclite::queue q("rtx_2080");
        q.charge_setup();
        first_end = s.last_end_ns();
        EXPECT_GT(first_end, 0.0);
    }
    syclite::queue q2("rtx_2080");
    q2.charge_setup();
    const auto& last = s.spans().back();
    EXPECT_NEAR(last.start_ns, first_end, 1e-9);  // appended, not overlapped
}

TEST(QueueTrace, EventsCarryKernelNamesWithoutASession) {
    ASSERT_EQ(session::current(), nullptr);
    syclite::queue q("rtx_2080");
    syclite::buffer<int> b(64);
    q.submit([&](syclite::handler& h) {
        auto acc = h.get_access(b, syclite::access_mode::discard_write);
        h.parallel_for(
            syclite::nd_range<1>(syclite::range<1>(64), syclite::range<1>(64)),
            named_stats("lonely"),
            [=](syclite::nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    std::vector<float> host(16, 0.0f);
    syclite::buffer<float> fb(host.size());
    q.copy_to_device(fb, host.data());
    ASSERT_EQ(q.events().size(), 2u);
    EXPECT_EQ(q.events()[0].name(), "lonely");
    EXPECT_EQ(q.events()[1].name(), "");  // transfers are anonymous commands
}

TEST(RegionTrace, SimulatedRegionEmitsBalancedSpans) {
    const auto& dev = perf::device_by_name("stratix_10");
    const auto region =
        apps::kmeans::region(Variant::fpga_opt, dev, 1);
    session s("t");
    const auto est =
        apps::simulate_region(region, dev, perf::runtime_kind::sycl, &s);

    ASSERT_FALSE(s.empty());
    const span& reg = s.spans().back();
    EXPECT_EQ(reg.kind, span_kind::region);
    EXPECT_EQ(reg.name, "kmeans/fpga_opt/size1");
    // The region span covers exactly the simulated total, and the session's
    // decomposition reproduces the estimate's two counters.
    EXPECT_NEAR(reg.duration_ns(), est.total_ns(), 1e-6);
    EXPECT_NEAR(s.kernel_ns(), est.kernel_ns, 1e-6);
    EXPECT_NEAR(s.non_kernel_ns(), est.non_kernel_ns, 1e-6);
    // Dataflow design: pipe kernels overlap on separate lanes.
    std::vector<const span*> lanes;
    for (const auto& sp : s.spans())
        if (sp.kind == span_kind::kernel && sp.track > 0) lanes.push_back(&sp);
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_DOUBLE_EQ(lanes[0]->start_ns, lanes[1]->start_ns);
}

TEST(RegionTrace, SuccessiveSimulationsAppend) {
    const auto& dev = perf::device_by_name("rtx_2080");
    const auto region = apps::kmeans::region(Variant::sycl_opt, dev, 1);
    session s("t");
    (void)apps::simulate_region(region, dev, perf::runtime_kind::sycl, &s);
    const double first_end = s.last_end_ns();
    (void)apps::simulate_region(region, dev, perf::runtime_kind::sycl, &s);
    const span& second_region = s.spans().back();
    EXPECT_NEAR(second_region.start_ns, first_end, 1e-9);
}

TEST(RegionTrace, DefaultOverloadUsesCurrentSession) {
    const auto& dev = perf::device_by_name("rtx_2080");
    const auto region = apps::kmeans::region(Variant::sycl_opt, dev, 1);
    session s("t");
    {
        session::scope scope(s);
        (void)apps::simulate_region(region, dev, perf::runtime_kind::sycl);
    }
    EXPECT_FALSE(s.empty());
    // And without a current session, nothing is collected anywhere.
    (void)apps::simulate_region(region, dev, perf::runtime_kind::sycl);
}

}  // namespace
}  // namespace altis::trace
