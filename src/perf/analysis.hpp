// Kernel analysis: explains *why* a kernel takes the time the model says it
// takes and which of the paper's optimization techniques apply. This is the
// reproduction's stand-in for the VTune profiling the authors used to find
// pipeline bottlenecks (Sec. 5.2) and encodes their "comprehensive set of
// practical guidelines" as machine-checkable advice.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "perf/device.hpp"
#include "perf/kernel_stats.hpp"

namespace altis::perf {

/// What limits the kernel on the analyzed device.
enum class bottleneck {
    compute,          ///< FP/int throughput (CPU/GPU roofline left of ridge)
    memory_bandwidth, ///< DRAM/board bandwidth
    latency,          ///< launch/wave floors dominate (kernel too small)
    pipeline,         ///< FPGA datapath cycles (II, dep chains, SIMD width)
    local_memory,     ///< shared/local-memory ports or arbitration
};

[[nodiscard]] const char* to_string(bottleneck b);

/// One actionable recommendation, tied to the paper section it comes from.
struct advice {
    std::string what;     ///< e.g. "rewrite as Single-Task with pipes"
    std::string paper_ref;  ///< e.g. "Sec. 5.3"
    double expected_gain = 1.0;  ///< rough model-predicted factor
};

struct kernel_analysis {
    bottleneck bound = bottleneck::compute;
    double time_ns = 0.0;
    /// Fraction of the limiting resource's capability actually used by the
    /// dominating term (1.0 = at the wall).
    double limit_utilization = 0.0;
    /// Secondary times: what the kernel would take if only bounded by X.
    double compute_only_ns = 0.0;
    double memory_only_ns = 0.0;
    std::vector<advice> suggestions;
};

/// Analyze one kernel on one device. For FPGAs, pass the design Fmax if the
/// kernel shares a bitstream (0 = estimate from the kernel alone).
[[nodiscard]] kernel_analysis analyze(const kernel_stats& k,
                                      const device_spec& dev,
                                      double design_fmax_mhz = 0.0);

/// Render a short human-readable report.
void render(const kernel_analysis& a, const kernel_stats& k,
            const device_spec& dev, std::ostream& out);

}  // namespace altis::perf
