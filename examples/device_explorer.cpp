// Device explorer: walks the simulated device catalog (the paper's Table 2)
// and reports, per device: headline specs, USM support (the Sec. 3.2.1
// story), the FPGA peak-attainable range, and the roofline crossover -- the
// arithmetic intensity (FLOP/byte) above which a kernel stops being
// memory-bound on that device.
//
// Build & run:   ./examples/device_explorer
#include <iostream>

#include "core/report.hpp"
#include "perf/device.hpp"
#include "perf/model.hpp"
#include "perf/overhead.hpp"

int main() {
    using altis::Table;
    namespace perf = altis::perf;

    Table t({"Device", "Kind", "Peak FP32 [TF]", "BW [GB/s]",
             "Roofline crossover [FLOP/B]", "USM", "SYCL launch [us]"});
    for (const auto& d : perf::device_catalog()) {
        double peak = d.peak_fp32_tflops;
        if (d.is_fpga()) peak = d.fpga_peak_fp32_tflops(d.fmax_mhz);
        const double crossover = peak * 1e12 / (d.mem_bw_gbs * 1e9);
        t.add_row({d.display, perf::to_string(d.kind), Table::num(peak, 1),
                   Table::num(d.mem_bw_gbs, 0), Table::num(crossover, 1),
                   d.usm_supported ? "yes" : "no (returns nullptr)",
                   Table::num(perf::launch_overhead_ns(perf::runtime_kind::sycl,
                                                       d) /
                                  1e3,
                              0)});
    }
    t.print(std::cout);

    std::cout << "\nFPGA peak-attainable sweep (Peak = DSP x 2 x F):\n";
    Table f({"Device", "250 MHz", "350 MHz", "450 MHz", "550 MHz"});
    for (const auto& d : perf::device_catalog()) {
        if (!d.is_fpga()) continue;
        std::vector<std::string> row{d.display};
        for (double mhz : {250.0, 350.0, 450.0, 550.0})
            row.push_back(mhz <= d.fmax_mhz
                              ? Table::num(d.fpga_peak_fp32_tflops(mhz), 1) +
                                    " TF"
                              : "-");
        f.add_row(std::move(row));
    }
    f.print(std::cout);

    // Demonstrate how one kernel lands on every device.
    std::cout << "\nOne memory-bound kernel (4 FLOP, 24 B per item, 16M "
                 "items) across devices:\n";
    perf::kernel_stats k;
    k.name = "streaming";
    k.global_items = 1 << 24;
    k.wg_size = 256;
    k.fp32_ops = 4;
    k.bytes_read = 16;
    k.bytes_written = 8;
    k.static_fp32_ops = 4;
    k.args_restrict = true;
    Table s({"Device", "simulated time [ms]"});
    for (const auto& d : perf::device_catalog())
        s.add_row({d.display, Table::num(perf::kernel_time_ns(k, d) / 1e6, 2)});
    s.print(std::cout);
    std::cout << "(ordering follows memory bandwidth -- the paper's Sec. 5.4 "
                 "observation that bandwidth decides the large-size FPGA "
                 "results)\n";
    return 0;
}
