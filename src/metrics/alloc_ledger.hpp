// Pointer -> size ledger backing the USM live-bytes gauge. usm_free() takes
// only a pointer (SYCL free semantics), so the allocation site records the
// byte count here and the free site looks it up. Mutex-guarded: USM
// allocation already pays ::operator new, so a lock on this cold path is
// invisible; the kernel hot paths never touch the ledger.
//
// registry::reset_all() clears the ledger at session start, so a session can
// never subtract bytes some earlier session accounted for.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace altis::metrics {

class alloc_ledger {
public:
    static alloc_ledger& instance() {
        static alloc_ledger l;
        return l;
    }

    void on_alloc(const void* p, std::uint64_t bytes) {
        if (p == nullptr) return;
        std::lock_guard lock(mutex_);
        bytes_[p] = bytes;
    }

    /// Removes the entry for `p` and returns its size; 0 when the pointer
    /// was not allocated under the current session (allocated before the
    /// session started, or after a reset).
    [[nodiscard]] std::uint64_t on_free(const void* p) {
        std::lock_guard lock(mutex_);
        const auto it = bytes_.find(p);
        if (it == bytes_.end()) return 0;
        const std::uint64_t n = it->second;
        bytes_.erase(it);
        return n;
    }

    void clear() {
        std::lock_guard lock(mutex_);
        bytes_.clear();
    }

private:
    alloc_ledger() = default;

    std::mutex mutex_;
    std::unordered_map<const void*, std::uint64_t> bytes_;
};

}  // namespace altis::metrics
