// Device catalog: the six accelerators of the paper's Table 2, with the
// additional microarchitectural parameters the analytic performance models
// need (FP64 throughput ratios, PCIe bandwidth, FPGA resource totals and
// achievable kernel-frequency ranges).
//
// Substitution note (DESIGN.md Sec. 2): none of this hardware exists in the
// reproduction environment, so these specs parameterize simulators instead of
// describing attached devices.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace altis::perf {

enum class device_kind { cpu, gpu, fpga };

[[nodiscard]] const char* to_string(device_kind k);

struct device_spec {
    std::string name;     ///< stable identifier, e.g. "stratix_10"
    std::string display;  ///< Table-2 row label, e.g. "Stratix 10 FPGA (BittWare 520N)"
    device_kind kind = device_kind::cpu;
    int process_nm = 0;

    /// CPU cores / GPU SMs (Xe-cores) / FPGA user-logic DSPs.
    int compute_units = 0;

    double peak_fp32_tflops = 0.0;
    double peak_fp64_tflops = 0.0;
    /// Throughput of special-function ops (pow, exp, rsqrt) in TOP/s; far
    /// below FMA rate on every device -- this is what makes the paper's
    /// pow(a,2) -> a*a transformation worth 6x in ParticleFilter Float.
    double peak_sfu_tops = 0.0;

    double mem_bw_gbs = 0.0;   ///< peak device memory bandwidth
    double pcie_bw_gbs = 0.0;  ///< host<->device transfer bandwidth

    /// Sustained-fraction knobs for the roofline models.
    double compute_efficiency = 0.7;  ///< fraction of peak FLOP/s sustained
    double mem_efficiency = 0.75;     ///< fraction of peak bandwidth sustained

    bool usm_supported = true;  ///< false on both FPGA boards (Sec. 3.2.1)

    // --- FPGA-only fields (zero elsewhere) ---
    std::int64_t total_alms = 0;
    std::int64_t total_brams = 0;   ///< M20K blocks
    std::int64_t total_dsps = 0;    ///< device total (Table 3 "T:")
    std::int64_t user_dsps = 0;     ///< available to user logic (Table 2)
    double fmin_mhz = 0.0;          ///< low end of achieved SYCL-kernel Fmax
    double fmax_mhz = 0.0;          ///< high end of achieved SYCL-kernel Fmax

    [[nodiscard]] bool is_fpga() const { return kind == device_kind::fpga; }

    /// Peak attainable FP32 for FPGAs per the paper's formula
    /// `DSP_user x 2 x F` (TFLOP/s) at the given kernel frequency.
    [[nodiscard]] double fpga_peak_fp32_tflops(double freq_mhz) const;
};

/// All devices of Table 2. Stable order: CPU, GPUs, FPGAs.
[[nodiscard]] std::span<const device_spec> device_catalog();

/// Lookup by `name`; throws std::out_of_range for unknown names.
[[nodiscard]] const device_spec& device_by_name(const std::string& name);

}  // namespace altis::perf
