# Empty compiler generated dependencies file for device_explorer.
# This may be replaced when dependencies are built.
