// SARIF v2.1.0 exporter and the baseline/suppression workflow. The strict
// mini_json round-trip locks down well-formedness; the structural checks pin
// the subset of the schema GitHub code scanning actually consumes.
#include "analyze/sarif.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/mini_json.hpp"

namespace altis::analyze {
namespace {

report sample_report() {
    report r;
    r.add(make_finding("ALS-R1", "writer_a, writer_b", "mem#0[0..64)",
                       "write by 'writer_a' and write by 'writer_b' overlap"));
    r.add(make_finding("ALS-L1", "pf_propagate", "", "pow(a,2)"));
    return r;
}

std::string render(const report& r) {
    std::ostringstream os;
    render_sarif(r, os);
    return os.str();
}

TEST(Sarif, DocumentHasTheRequiredStructure) {
    const auto doc = mini_json::parse(render(sample_report()));
    EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
    EXPECT_NE(doc.at("$schema").as_string().find("sarif-2.1.0"),
              std::string::npos);
    const auto& runs = doc.at("runs").as_array();
    ASSERT_EQ(runs.size(), 1u);
    const auto& driver = runs[0].at("tool").at("driver");
    EXPECT_EQ(driver.at("name").as_string(), "altis-sanitize");
    // Every catalog rule ships as reportingDescriptor metadata.
    EXPECT_EQ(driver.at("rules").as_array().size(), rule_catalog().size());

    const auto& results = runs[0].at("results").as_array();
    ASSERT_EQ(results.size(), 2u);
    // Sorted like render_json: ALS-L1 before ALS-R1.
    const auto& r1 = results[1];
    EXPECT_EQ(r1.at("ruleId").as_string(), "ALS-R1");
    EXPECT_EQ(r1.at("level").as_string(), "error");
    const auto& logical =
        r1.at("locations").as_array()[0].at("logicalLocations").as_array()[0];
    EXPECT_EQ(logical.at("name").as_string(), "writer_a, writer_b");
    const std::string fp = r1.at("partialFingerprints")
                               .at("altisSanitizeFingerprint/v1")
                               .as_string();
    EXPECT_EQ(fp.size(), 16u);
    // ruleIndex must point at the ruleId's descriptor.
    const auto idx = static_cast<std::size_t>(
        r1.at("ruleIndex").as_number());
    EXPECT_EQ(driver.at("rules").as_array()[idx].at("id").as_string(),
              "ALS-R1");
}

TEST(Sarif, EmptyReportIsStillAValidRun) {
    const auto doc = mini_json::parse(render(report{}));
    EXPECT_EQ(
        doc.at("runs").as_array()[0].at("results").as_array().size(), 0u);
}

TEST(Sarif, RenderingIsByteStable) {
    EXPECT_EQ(render(sample_report()), render(sample_report()));
}

TEST(Baseline, ParserIsShapeTolerant) {
    // A hand-written list, a saved SARIF run, and junk-in-between all work:
    // anything that is not exactly 16 lowercase hex chars is ignored.
    const auto fps = parse_baseline(
        R"({"findings": [{"fingerprint": "0123456789abcdef"}],
            "partialFingerprints": {"v1": "ffffffffffffffff"},
            "not_a_fp": ["0123", "0123456789ABCDEF", "xyz3456789abcdef",
                         "0123456789abcdef"]})");
    ASSERT_EQ(fps.size(), 2u);
    EXPECT_EQ(fps[0], "0123456789abcdef");
    EXPECT_EQ(fps[1], "ffffffffffffffff");
}

TEST(Baseline, KnownFindingsAreDemotedToNotes) {
    const report r = sample_report();
    const finding& race = r.findings()[0];
    ASSERT_EQ(race.rule, "ALS-R1");
    const report masked = apply_baseline(r, {fingerprint(race)});
    ASSERT_EQ(masked.size(), 2u);
    // Demoted finding stays visible but no longer gates --sanitize error...
    std::size_t notes = 0;
    for (const finding& f : masked.findings()) {
        if (f.rule == "ALS-R1") {
            EXPECT_EQ(f.sev, severity::note);
            ++notes;
        }
        // ...and its identity is unchanged (severity is not hashed), so the
        // same baseline entry keeps matching on the next run.
        if (f.rule == "ALS-R1") EXPECT_EQ(fingerprint(f), fingerprint(race));
    }
    EXPECT_EQ(notes, 1u);
    // The ALS-L1 warning is still live: only listed findings are demoted.
    EXPECT_EQ(masked.count_at_least(severity::warning), 1u);
}

TEST(Baseline, StaleEntriesSurfaceAsAlsB1) {
    const report masked =
        apply_baseline(sample_report(), {"deadbeefdeadbeef"});
    bool found = false;
    for (const finding& f : masked.findings()) {
        if (f.rule != "ALS-B1") continue;
        found = true;
        EXPECT_EQ(f.sev, severity::note);
        EXPECT_EQ(f.object, "deadbeefdeadbeef");
        EXPECT_NE(f.message.find("matches no current finding"),
                  std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST(Baseline, FullyMaskedReportDoesNotGate) {
    const report r = sample_report();
    std::vector<std::string> all;
    for (const finding& f : r.findings()) all.push_back(fingerprint(f));
    const report masked = apply_baseline(r, all);
    EXPECT_EQ(masked.count_at_least(severity::warning), 0u);
    EXPECT_EQ(masked.count_at_least(severity::note), 2u);
}

}  // namespace
}  // namespace altis::analyze
