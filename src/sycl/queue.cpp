#include "sycl/queue.hpp"

#include <algorithm>
#include <stdexcept>

#include "perf/model.hpp"
#include "perf/resource_model.hpp"

namespace syclite {

queue::queue(const perf::device_spec& dev, perf::runtime_kind rt)
    : dev_(dev), rt_(rt), trace_(trace::session::current()) {
    if (trace_ != nullptr) {
        if (trace_->device() == nullptr) trace_->bind_device(dev_);
        trace_base_ns_ = trace_->last_end_ns();
    }
}

queue::queue(const std::string& device_name, perf::runtime_kind rt)
    : queue(perf::device_by_name(device_name), rt) {}

queue::~queue() {
    // Abandoning a dataflow group would leak blocked threads; join them.
    for (auto& t : pending_threads_)
        if (t.joinable()) t.join();
}

event queue::record(const perf::kernel_stats& stats, double duration_ns) {
    const double launch = perf::launch_overhead_ns(rt_, dev_);
    const double submit = sim_now_ns_;
    const double start = submit + launch;
    const double end = start + duration_ns;
    sim_now_ns_ = end;
    non_kernel_ns_ += launch;
    kernel_ns_ += duration_ns;
    if (trace_ != nullptr) {
        const double b = trace_base_ns_;
        trace_->record({trace::span_kind::overhead, "launch", b + submit,
                        b + start});
        trace_->record_kernel(stats, b + start, b + end);
    }
    events_.emplace_back(submit, start, end, stats.name);
    return events_.back();
}

event queue::finish_submit(handler&& h) {
    if (!h.has_kernel()) return event(sim_now_ns_, sim_now_ns_, sim_now_ns_);

    if (in_dataflow_) {
        pending_stats_.push_back(h.stats());
        pending_threads_.emplace_back(
            [this, exec = std::move(h.exec_)]() mutable {
                try {
                    exec(thread_pool::global());
                } catch (...) {
                    std::lock_guard lock(pending_error_mutex_);
                    if (!pending_error_)
                        pending_error_ = std::current_exception();
                }
            });
        return event();  // timestamps assigned at end_dataflow()
    }

    h.exec_(thread_pool::global());
    const double duration =
        (dev_.is_fpga() && design_fmax_mhz_ > 0.0)
            ? perf::fpga_kernel_time_ns(h.stats(), dev_, design_fmax_mhz_)
            : perf::kernel_time_ns(h.stats(), dev_);
    return record(h.stats(), duration);
}

void queue::set_design(const std::vector<perf::kernel_stats>& design_kernels) {
    if (!dev_.is_fpga())
        throw std::logic_error("queue::set_design: only meaningful on FPGAs");
    design_fmax_mhz_ =
        perf::estimate_design_resources(design_kernels, dev_).fmax_mhz;
}

void queue::begin_dataflow() {
    if (in_dataflow_)
        throw std::logic_error("queue: dataflow groups cannot nest");
    in_dataflow_ = true;
}

std::vector<event> queue::end_dataflow() {
    if (!in_dataflow_)
        throw std::logic_error("queue: end_dataflow without begin_dataflow");
    in_dataflow_ = false;

    for (auto& t : pending_threads_) t.join();
    pending_threads_.clear();
    if (pending_error_) {
        pending_stats_.clear();
        std::exception_ptr err = std::exchange(pending_error_, nullptr);
        std::rethrow_exception(err);
    }

    // Simulated overlap: every kernel of the group launches together; the
    // group completes with its slowest member. On FPGA all kernels share one
    // bitstream, so each is clocked at the design Fmax.
    std::vector<double> durations;
    durations.reserve(pending_stats_.size());
    if (dev_.is_fpga()) {
        const double fmax =
            design_fmax_mhz_ > 0.0
                ? design_fmax_mhz_
                : perf::estimate_design_resources(pending_stats_, dev_).fmax_mhz;
        for (const auto& s : pending_stats_)
            durations.push_back(perf::fpga_kernel_time_ns(s, dev_, fmax));
    } else {
        for (const auto& s : pending_stats_)
            durations.push_back(perf::kernel_time_ns(s, dev_));
    }

    const double launch = perf::launch_overhead_ns(rt_, dev_);
    const double submit = sim_now_ns_;
    const double start = submit + launch;
    std::vector<event> evs;
    double group_end = start;
    for (std::size_t i = 0; i < durations.size(); ++i) {
        evs.emplace_back(submit, start, start + durations[i],
                         pending_stats_[i].name);
        group_end = std::max(group_end, start + durations[i]);
    }
    non_kernel_ns_ += launch * static_cast<double>(durations.size());
    kernel_ns_ += group_end - start;  // wall-clock kernel region of the group
    sim_now_ns_ = group_end +
                  launch * std::max<double>(0.0,
                                            static_cast<double>(durations.size()) - 1.0);
    if (trace_ != nullptr && !durations.empty()) {
        // The group's wall-clock envelope sits on the main lane; each member
        // kernel gets its own lane so exporters show the overlap (Fig. 3).
        const double b = trace_base_ns_;
        trace_->record({trace::span_kind::overhead, "launch", b + submit,
                        b + start});
        std::string label = "dataflow";
        for (const auto& s : pending_stats_) label += ":" + s.name;
        trace_->record({trace::span_kind::dataflow_group, label, b + start,
                        b + group_end});
        for (std::size_t i = 0; i < durations.size(); ++i)
            trace_->record_kernel(pending_stats_[i], b + start,
                                  b + start + durations[i],
                                  static_cast<int>(i) + 1);
        if (durations.size() > 1)
            trace_->record({trace::span_kind::overhead, "launch drain",
                            b + group_end, b + sim_now_ns_});
    }
    pending_stats_.clear();
    events_.insert(events_.end(), evs.begin(), evs.end());
    return evs;
}

void queue::wait() {
    if (in_dataflow_)
        throw std::logic_error("queue: wait() inside a dataflow group -- call "
                               "end_dataflow() first");
    const double sync = perf::sync_overhead_ns(rt_, dev_);
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::sync, "wait",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + sync});
    sim_now_ns_ += sync;
    non_kernel_ns_ += sync;
}

void queue::annotate_overhead_ns(double ns) {
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::overhead, "overhead",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + ns});
    events_.emplace_back(sim_now_ns_, sim_now_ns_, sim_now_ns_ + ns);
    sim_now_ns_ += ns;
    non_kernel_ns_ += ns;
}

void queue::annotate_transfer(double bytes) {
    const double t = perf::transfer_ns(rt_, dev_, bytes);
    if (trace_ != nullptr) {
        trace::span s{trace::span_kind::transfer, "transfer",
                      trace_base_ns_ + sim_now_ns_,
                      trace_base_ns_ + sim_now_ns_ + t};
        s.counters.bytes = bytes;
        trace_->record(std::move(s));
    }
    events_.emplace_back(sim_now_ns_, sim_now_ns_, sim_now_ns_ + t);
    sim_now_ns_ += t;
    non_kernel_ns_ += t;
}

void queue::reset_timers() {
    if (trace_ != nullptr) trace_base_ns_ = trace_->last_end_ns();
    sim_now_ns_ = 0.0;
    kernel_ns_ = 0.0;
    non_kernel_ns_ = 0.0;
    events_.clear();
}

void queue::charge_setup() {
    const double t = perf::setup_overhead_ns(rt_, dev_);
    if (trace_ != nullptr)
        trace_->record({trace::span_kind::setup, "setup",
                        trace_base_ns_ + sim_now_ns_,
                        trace_base_ns_ + sim_now_ns_ + t});
    sim_now_ns_ += t;
    non_kernel_ns_ += t;
}

}  // namespace syclite
