// Descriptor-vs-reality cross-check (DESIGN.md Sec. 4): with accessor
// access-counting enabled, the global-memory traffic a kernel actually
// performs must match what its kernel_stats descriptor declares. This pins
// the model inputs to the functional code for a kernel with an exact
// element-to-byte mapping.
#include <gtest/gtest.h>

#include "apps/where/where.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps {
namespace {

TEST(AccessCounting, WhereMarkKernelMatchesDescriptor) {
    const std::size_t n = 4096;
    where::params p;
    p.n = n;
    const auto table = where::make_table(p);

    sl::queue q("rtx_2080");
    sl::buffer<where::record> table_buf(table.data(), n);
    sl::buffer<int> flags(n);

    // Build the same descriptor the app submits.
    const auto& dev = perf::device_by_name("rtx_2080");
    perf::kernel_stats declared;
    {
        // Reuse the region builder: its first kernel is the mark kernel.
        const auto region = where::region(Variant::sycl_opt, dev, 1);
        declared = region.kernels.at(0).stats;
    }

    table_buf.reset_access_count();
    flags.reset_access_count();
    {
        sl::scoped_access_counting counting;
        q.submit([&](sl::handler& h) {
            auto t = h.get_access(table_buf, sl::access_mode::read);
            auto f = h.get_access(flags, sl::access_mode::discard_write);
            const std::int32_t threshold = p.threshold;
            h.parallel_for(
                sl::nd_range<1>(sl::range<1>(n), sl::range<1>(256)), declared,
                [=](sl::nd_item<1> it) {
                    const std::size_t i = it.get_global_id(0);
                    f[i] = t[i].key < threshold ? 1 : 0;
                });
        });
        q.wait();
    }

    // One record read and one flag written per item.
    EXPECT_EQ(table_buf.access_count(), n);
    EXPECT_EQ(flags.access_count(), n);

    // Bytes actually touched == bytes the descriptor declares per item.
    const double counted_read_bytes =
        static_cast<double>(table_buf.access_count()) * sizeof(where::record);
    const double counted_written_bytes =
        static_cast<double>(flags.access_count()) * sizeof(int);
    EXPECT_DOUBLE_EQ(counted_read_bytes,
                     declared.bytes_read * static_cast<double>(n));
    EXPECT_DOUBLE_EQ(counted_written_bytes,
                     declared.bytes_written * static_cast<double>(n));
}

TEST(AccessCounting, DisabledByDefaultEvenThroughKernels) {
    const std::size_t n = 256;
    sl::queue q("a100");
    sl::buffer<int> buf(n);
    q.submit([&](sl::handler& h) {
        auto acc = h.get_access(buf, sl::access_mode::discard_write);
        perf::kernel_stats k;
        k.name = "fill";
        h.parallel_for(sl::nd_range<1>(sl::range<1>(n), sl::range<1>(64)), k,
                       [=](sl::nd_item<1> it) { acc[it.get_global_id(0)] = 1; });
    });
    EXPECT_EQ(buf.access_count(), 0u);
}

}  // namespace
}  // namespace altis::apps
