# Empty compiler generated dependencies file for altis_rng.
# This may be replaced when dependencies are built.
