// Size-class table for the altis::mem pool (docs/PERFORMANCE.md "Memory
// subsystem"). Small allocations are quantized to 22 classes -- 64-byte
// steps up to 1 KiB, then powers of two up to 64 KiB -- so thread magazines
// and central free lists stay small arrays indexed by class. Everything
// larger is a "large object": rounded to the next power of two (min 128 KiB)
// and recycled through the reuse cache instead of the slab path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace altis::mem {

/// Every payload the subsystem hands out is 64-byte aligned -- the alignment
/// the syclite USM allocator always requested from ::operator new.
inline constexpr std::size_t kAlignment = 64;

/// Largest small-class payload; above this the large-object path applies.
inline constexpr std::size_t kSmallMax = 64 * 1024;

inline constexpr unsigned kLinearClasses = 16;  ///< 64, 128, ..., 1024
inline constexpr unsigned kSmallClasses = 22;   ///< + 2K, 4K, ..., 64K

/// Payload bytes of small class `idx` (0-based).
[[nodiscard]] constexpr std::size_t class_size(unsigned idx) {
    return idx < kLinearClasses
               ? (std::size_t{idx} + 1) * kAlignment
               : std::size_t{1024} << (idx - kLinearClasses + 1);
}

/// Smallest small class whose payload holds `bytes`. Only valid for
/// bytes <= kSmallMax; zero-byte requests land in class 0 (a 64-byte block),
/// which is what gives zero-count USM allocations a unique, freeable
/// address.
[[nodiscard]] constexpr unsigned size_to_class(std::size_t bytes) {
    if (bytes <= kAlignment) return 0;
    if (bytes <= 1024)
        return static_cast<unsigned>((bytes + kAlignment - 1) / kAlignment) -
               1;
    unsigned idx = kLinearClasses;
    std::size_t fit = 2048;
    while (fit < bytes) {
        fit <<= 1;
        ++idx;
    }
    return idx;
}

/// Large classes are powers of two starting at 128 KiB (2^17); the index is
/// the exponent offset. 40 classes cover up to 2^56 bytes -- far beyond any
/// allocation the host could satisfy.
inline constexpr unsigned kLargeShift = 17;
inline constexpr unsigned kLargeClasses = 40;

[[nodiscard]] constexpr unsigned large_class(std::size_t bytes) {
    unsigned idx = 0;
    std::size_t fit = std::size_t{1} << kLargeShift;
    while (fit < bytes) {
        fit <<= 1;
        ++idx;
    }
    return idx;
}

[[nodiscard]] constexpr std::size_t large_class_size(unsigned idx) {
    return std::size_t{1} << (kLargeShift + idx);
}

}  // namespace altis::mem
