#include "apps/nw/nw.hpp"

#include <algorithm>

#include "apps/common/verify.hpp"
#include "rng/xorwow.hpp"
#include "sycl/syclite.hpp"

namespace altis::apps::nw {

params params::preset(int size) {
    params p;
    switch (size) {
        case 1: p.n = 4096; break;
        case 2: p.n = 8192; break;
        case 3: p.n = 16384; break;
        default: throw std::invalid_argument("nw: size must be 1..3");
    }
    return p;
}

workload make_workload(const params& p) {
    workload w;
    w.seq1.resize(p.n);
    w.seq2.resize(p.n);
    rng::xorwow gen(p.seed);
    for (auto& c : w.seq1) c = static_cast<std::int8_t>(gen.next_u32() % 10);
    for (auto& c : w.seq2) c = static_cast<std::int8_t>(gen.next_u32() % 10);
    return w;
}

std::vector<int> golden(const params& p, const workload& w) {
    const std::size_t m = p.n + 1;
    std::vector<int> score(m * m);
    for (std::size_t i = 0; i < m; ++i)
        score[i * m] = -static_cast<int>(i) * kPenalty;
    for (std::size_t j = 0; j < m; ++j)
        score[j] = -static_cast<int>(j) * kPenalty;
    for (std::size_t i = 1; i < m; ++i)
        for (std::size_t j = 1; j < m; ++j) {
            const int diag =
                score[(i - 1) * m + j - 1] + similarity(w.seq1[i - 1], w.seq2[j - 1]);
            const int up = score[(i - 1) * m + j] - kPenalty;
            const int left = score[i * m + j - 1] - kPenalty;
            score[i * m + j] = std::max({diag, up, left});
        }
    // Interior only.
    std::vector<int> out(p.n * p.n);
    for (std::size_t i = 0; i < p.n; ++i)
        for (std::size_t j = 0; j < p.n; ++j)
            out[i * p.n + j] = score[(i + 1) * m + j + 1];
    return out;
}

namespace detail {

perf::kernel_stats stats_diag(const params& p, Variant v,
                              const perf::device_spec& dev, double avg_blocks);

}  // namespace detail

namespace {

/// Processes one anti-diagonal of blocks: one work-group per block, a local
/// (kTile+1)^2 tile, and a 2*kTile-1 phase wavefront with implicit barriers.
void submit_diagonal(sl::queue& q, const params& p, sl::buffer<int>& score,
                     sl::buffer<std::int8_t>& seq1, sl::buffer<std::int8_t>& seq2,
                     std::size_t diag, std::size_t first_block,
                     std::size_t num_blocks, const perf::kernel_stats& stats) {
    q.submit([&](sl::handler& h) {
        auto s = h.get_access(score, sl::access_mode::read_write);
        auto a = h.get_access(seq1, sl::access_mode::read);
        auto b = h.get_access(seq2, sl::access_mode::read);
        const std::size_t m = p.n + 1;
        const std::size_t d = diag, fb = first_block;
        h.parallel_for_work_group(
            sl::range<1>(num_blocks), sl::range<1>(kTile), stats,
            [=](sl::group<1> g) {
                const std::size_t bi = fb + g.get_group_id(0);
                const std::size_t bj = d - bi;
                const std::size_t i0 = bi * kTile;  // tile origin in DP space
                const std::size_t j0 = bj * kTile;

                int tile[kTile + 1][kTile + 1];
                g.parallel_for_work_item([&](sl::h_item<1> it) {
                    const std::size_t tx = it.get_local_id(0);
                    // North boundary row and west boundary column.
                    tile[0][tx + 1] = s[i0 * m + (j0 + tx + 1)];
                    tile[tx + 1][0] = s[(i0 + tx + 1) * m + j0];
                    if (tx == 0) tile[0][0] = s[i0 * m + j0];
                });
                for (int phase = 0; phase < 2 * kTile - 1; ++phase) {
                    g.parallel_for_work_item([&](sl::h_item<1> it) {
                        const int tx = static_cast<int>(it.get_local_id(0));
                        const int ty = phase - tx;
                        if (ty < 0 || ty >= kTile) return;
                        const int sim =
                            similarity(a[i0 + static_cast<std::size_t>(tx)],
                                       b[j0 + static_cast<std::size_t>(ty)]);
                        const int diag_v = tile[tx][ty] + sim;
                        const int up = tile[tx][ty + 1] - kPenalty;
                        const int left = tile[tx + 1][ty] - kPenalty;
                        tile[tx + 1][ty + 1] = std::max({diag_v, up, left});
                    });
                }
                g.parallel_for_work_item([&](sl::h_item<1> it) {
                    const std::size_t tx = it.get_local_id(0);
                    for (int ty = 0; ty < kTile; ++ty)
                        s[(i0 + tx + 1) * m + j0 + static_cast<std::size_t>(ty) + 1] =
                            tile[tx + 1][ty + 1];
                });
            });
    });
}

}  // namespace

AppResult run(const RunConfig& cfg) {
    const perf::device_spec& dev = resolve_device(cfg);
    const params p = params::preset(cfg.size);
    const workload w = make_workload(p);
    const std::vector<int> expected = golden(p, w);

    sl::queue q(dev, runtime_for(cfg.variant));
    if (dev.is_fpga()) q.set_design(region(cfg.variant, dev, cfg.size).all_kernels());
    // One-time context/JIT setup is excluded from the timed region (warmed up).

    const std::size_t m = p.n + 1;
    std::vector<int> init(m * m, 0);
    for (std::size_t i = 0; i < m; ++i) init[i * m] = -static_cast<int>(i) * kPenalty;
    for (std::size_t j = 0; j < m; ++j) init[j] = -static_cast<int>(j) * kPenalty;

    sl::buffer<int> score(m * m);
    q.copy_to_device(score, init.data());
    sl::buffer<std::int8_t> seq1(p.n), seq2(p.n);
    q.copy_to_device(seq1, w.seq1.data());
    q.copy_to_device(seq2, w.seq2.data());

    const std::size_t nb = p.blocks();
    // Two-pass diagonal sweep, as in the original Altis kernels 1 and 2.
    for (std::size_t d = 0; d < 2 * nb - 1; ++d) {
        const std::size_t first = d < nb ? 0 : d - nb + 1;
        const std::size_t last = std::min(d, nb - 1);
        const std::size_t count = last - first + 1;
        submit_diagonal(q, p, score, seq1, seq2, d, first, count,
                        detail::stats_diag(p, cfg.variant, dev,
                                           static_cast<double>(count)));
    }
    q.wait();

    std::vector<int> result(m * m);
    q.copy_from_device(score, result.data());
    std::vector<int> interior(p.n * p.n);
    for (std::size_t i = 0; i < p.n; ++i)
        for (std::size_t j = 0; j < p.n; ++j)
            interior[i * p.n + j] = result[(i + 1) * m + j + 1];
    require_close(
        static_cast<double>(mismatch_count<int>(expected, interior)), 0.0,
        "nw");

    AppResult r;
    r.kernel_ms = q.kernel_ns() / 1e6;
    r.non_kernel_ms = q.non_kernel_ns() / 1e6;
    r.total_ms = q.sim_now_ns() / 1e6;
    return r;
}

void register_app() {
    register_standard_app(
        "nw", "Needleman-Wunsch DNA alignment (tiled wavefront DP)",
        {Variant::cuda, Variant::sycl_base, Variant::sycl_opt,
         Variant::fpga_base, Variant::fpga_opt},
        &run);
}

}  // namespace altis::apps::nw
