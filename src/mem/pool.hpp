// altis::mem -- pooled, thread-cached memory subsystem backing syclite USM
// allocations and buffer<T> storage (docs/PERFORMANCE.md "Memory
// subsystem"). The paper's fig2/4/5 sweeps re-run each app across many
// device configurations, re-allocating the same buffers only to free them
// milliseconds later; this layer turns those round trips into magazine and
// reuse-cache hits instead of OS traffic.
//
// Architecture:
//   * small allocations (<= 64 KiB) are size-classed (size_class.hpp) and
//     served from per-thread magazines -- plain singly-linked shelves, no
//     atomics on the hot path -- refilled from lock-free central free lists
//     (Treiber LIFO with whole-list pop, so there is no ABA window), which
//     are themselves replenished by carving 64-byte-aligned blocks out of
//     256 KiB slabs;
//   * large allocations round up to a power-of-two class and round-trip
//     through a bounded reuse cache, so back-to-back sweep configurations
//     recycle identical allocations instead of re-faulting fresh pages;
//   * every block carries a 64-byte header with an origin magic (pool vs.
//     system) and a generation tag bumped on each hand-out -- the sanitizer
//     records it with USM alloc/free nodes so pool recycling cannot alias
//     two logical allocations onto one fingerprint.
//
// The subsystem is wall-clock only: it changes how fast host memory is
// produced, never what the simulated timeline or ResultDatabase reports.
#pragma once

#include <cstddef>
#include <cstdint>

namespace altis::mem {

/// Allocation backend. `pooled` is the default; `system` routes every
/// request straight to ::operator new (the pre-pool behavior) -- kept so
/// benchmarks and tests can A/B the pool against the path it replaced.
/// $ALTIS_MEM_POOL=0 selects `system` at process start.
enum class backend { pooled, system };

void set_backend(backend b);
[[nodiscard]] backend current_backend();

/// Allocates `bytes` of 64-byte-aligned storage (never nullptr; throws
/// std::bad_alloc on exhaustion). Zero-byte requests return a unique,
/// freeable pointer. Blocks must be released with deallocate() -- the
/// header routes the free to whichever path allocated it.
[[nodiscard]] void* allocate(std::size_t bytes);

/// Releases a block from allocate(). nullptr is a no-op. Debug builds
/// assert the block's origin header is intact (double free, foreign
/// pointer, header corruption).
void deallocate(void* p) noexcept;

/// Usable payload bytes of a live block (>= the requested size).
[[nodiscard]] std::size_t usable_size(const void* p);

/// Generation tag stamped when the block was handed out; monotone across
/// the process, so a recycled address still names a unique logical
/// allocation. 0 for nullptr.
[[nodiscard]] std::uint64_t generation_of(const void* p);

/// Point-in-time pool statistics (relaxed-atomic reads; exact once
/// concurrent operations have drained).
struct pool_stats {
    std::uint64_t magazine_hits = 0;   ///< served from the thread magazine
    std::uint64_t central_hits = 0;    ///< magazine refilled from a free list
    std::uint64_t reuse_hits = 0;      ///< large block from the reuse cache
    std::uint64_t fresh_allocs = 0;    ///< had to touch the OS (slab or large)
    std::uint64_t recycled_bytes = 0;  ///< payload bytes served from any cache
    std::int64_t magazine_blocks = 0;  ///< blocks resident in thread magazines
    std::int64_t reuse_cache_bytes = 0;  ///< bytes parked in the reuse cache
    std::int64_t live_bytes = 0;         ///< payload bytes handed out, not freed
    std::int64_t live_blocks = 0;
};

[[nodiscard]] pool_stats stats();

/// Returns large reuse-cache blocks to the OS (slab memory stays reserved).
/// Tests use this to pin cache accounting; apps never need it.
void trim();

/// Flushes the calling thread's magazines into the central free lists.
/// Happens automatically at thread exit; exposed for tests.
void flush_thread_magazines();

}  // namespace altis::mem
