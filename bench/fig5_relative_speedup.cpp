// Regenerates Figure 5: relative speedup over the Xeon CPU achieved on
// {RTX 2080, A100, Max 1100} GPUs (optimized SYCL) and {Stratix 10, Agilex}
// FPGAs (optimized FPGA designs), per application and input size. Where with
// size 3 on Agilex crashed in the paper and is reported as "crash" here.
//
// The sweep is resilient: under an --inject fault plan each configuration is
// retried per policy; degraded cells print as FAILED (vs "crash" for the
// paper's known-nonexistent configs) and the rest of the figure still
// regenerates, with the outcome log appended.
#include <iostream>

#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "core/result_database.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig5_relative_speedup");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    using altis::Variant;
    namespace bench = altis::bench;
    namespace perf = altis::perf;
    namespace fault = altis::fault;

    const auto& policy = trace_harness.retry_policy();
    const bool fail_fast = trace_harness.fail_fast();
    const bool injecting = trace_harness.fault_options().enabled();
    altis::resilience::supervisor* sup = trace_harness.supervisor();
    const bool log_all = injecting || sup != nullptr;

    std::cout << "Figure 5: Relative speedup over the Xeon CPU\n";

    altis::ResultDatabase geo;
    try {
        for (int size : {1, 2, 3}) {
            std::cout << "\n== Size " << size << " ==\n";
            Table t({"Application", "RTX 2080", "A100", "Max 1100",
                     "Stratix 10", "Agilex", "paper(RTX/A100/Max/S10/Agx)"});
            for (const auto& e : bench::suite()) {
                if (!e.in_fig45) continue;
                const auto cpu = bench::run_config(e, Variant::sycl_opt,
                                                   "xeon_6128", size, policy,
                                                   fail_fast, sup);
                bench::record_config_outcome(
                    geo,
                    bench::config_label(e, Variant::sycl_opt, "xeon_6128", size),
                    cpu, log_all);
                std::vector<std::string> row{e.label};
                for (const auto& dev_name : bench::fig5_devices()) {
                    const Variant v = perf::device_by_name(dev_name).is_fpga()
                                          ? Variant::fpga_opt
                                          : Variant::sycl_opt;
                    const auto co = bench::run_config(e, v, dev_name, size,
                                                      policy, fail_fast, sup);
                    bench::record_config_outcome(
                        geo, bench::config_label(e, v, dev_name, size), co,
                        log_all);
                    const std::string series = "speedup_" + dev_name +
                                               "_size" + std::to_string(size);
                    const bool failed =
                        co.oc.st == fault::outcome::status::failed ||
                        cpu.oc.st == fault::outcome::status::failed;
                    const bool degraded =
                        (!co.oc.succeeded() && !co.skipped) ||
                        (!cpu.oc.succeeded() && !cpu.skipped);
                    if (failed) {
                        row.push_back("FAILED");
                        geo.add_failure(series, e.label, "x");
                    } else if (degraded) {
                        // Supervisor-only terminal states: name the status
                        // (deadline/cancelled/quarantined) instead of
                        // conflating it with the paper's known crashes.
                        row.push_back((!co.oc.succeeded() && !co.skipped)
                                          ? co.oc.label()
                                          : cpu.oc.label());
                        geo.add_failure(series, e.label, "x");
                    } else if (!co.ms || !cpu.ms) {
                        row.push_back("crash");
                        geo.add_failure(series, e.label, "x");
                    } else {
                        const double s = *cpu.ms / *co.ms;
                        row.push_back(Table::num(s, 2));
                        geo.add_result(series, e.label, "x", s);
                    }
                }
                std::string paper;
                for (std::size_t d = 0; d < 5; ++d) {
                    const double pv =
                        e.paper_fig5[d][static_cast<std::size_t>(size - 1)];
                    paper += (d > 0 ? "/" : "") +
                             (pv > 0.0 ? Table::num(pv, 2)
                                       : std::string("crash"));
                }
                row.push_back(std::move(paper));
                t.add_row(std::move(row));
            }
            t.print(std::cout);
        }
    } catch (const std::exception& e) {
        std::cerr << "aborting (--fail-fast): " << e.what() << "\n";
        return 1;
    }

    std::cout << "\nGeometric means over applications (ours vs paper):\n";
    Table g({"Device", "Size 1", "Size 2", "Size 3", "Paper S1", "Paper S2",
             "Paper S3"});
    const double paper_geo[5][3] = {{5.07, 7.00, 8.61},
                                    {4.91, 9.40, 23.14},
                                    {6.12, 12.44, 21.11},
                                    {2.16, 2.29, 1.44},
                                    {2.55, 2.25, 1.48}};
    std::size_t di = 0;
    for (const auto& dev_name : bench::fig5_devices()) {
        std::vector<std::string> row{dev_name};
        for (int size : {1, 2, 3})
            row.push_back(Table::num(
                geo.geomean("speedup_" + dev_name + "_size" +
                            std::to_string(size)),
                2));
        for (int i = 0; i < 3; ++i)
            row.push_back(Table::num(paper_geo[di][static_cast<std::size_t>(i)], 2));
        g.add_row(std::move(row));
        ++di;
    }
    g.print(std::cout);
    altis::print_outcomes(geo, std::cout);
    if (const int rc = trace_harness.finish(); rc != 0) return rc;
    if (altis::resilience::interrupted())
        return 128 + altis::resilience::interrupt_signal();
    return geo.all_outcomes_ok() ? 0 : 1;
}
