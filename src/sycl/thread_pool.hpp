// Minimal work-sharing thread pool used to execute work-groups in parallel.
//
// Jobs are concurrent: each parallel_for publishes its own job onto a work
// list and every pool worker self-schedules chunks from whichever published
// jobs still have work, so N dataflow kernels issuing ND-Range launches at
// once share the workers instead of queueing behind a submission lock
// (docs/PERFORMANCE.md). The calling thread always participates in its own
// job, so progress never depends on a worker being free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "analyze/shadow.hpp"
#include "sycl/small_function.hpp"

namespace syclite {

class thread_pool {
public:
    /// `threads` counts the workers in addition to the calling thread;
    /// 0 requests std::thread::hardware_concurrency() - 1.
    explicit thread_pool(unsigned threads = 0);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Runs fn(i) for i in [0, n); blocks until complete. The calling thread
    /// participates. fn must be safe to call concurrently for distinct i.
    /// Safe to call from multiple threads, and concurrent calls execute
    /// concurrently -- dataflow groups with ND-Range members rely on this.
    /// fn is borrowed, not owned (it outlives the call by construction), so
    /// submission allocates nothing.
    void parallel_for(std::size_t n, detail::function_ref<void(std::size_t)> fn);

    /// Fire-and-forget task for a worker thread (the graph scheduler posts
    /// ready-node dispatches this way). Tasks interleave with parallel_for
    /// jobs on the same workers. Posting after shutdown began silently drops
    /// the task -- graph joins run ready nodes inline, so nothing is lost.
    /// Tasks must not throw.
    void post(detail::small_function<void()> task);

    [[nodiscard]] unsigned worker_count() const {
        return static_cast<unsigned>(workers_.size());
    }

    /// Process-wide pool shared by all queues.
    static thread_pool& global();

private:
    void worker_loop();

    struct job {
        job(detail::function_ref<void(std::size_t)> f, std::size_t count,
            std::size_t chunk_size, int actor_id)
            : fn(f), n(count), chunk(chunk_size), actor(actor_id) {}

        detail::function_ref<void(std::size_t)> fn;
        std::size_t n;
        std::size_t chunk;
        /// Shadow actor of the submitting kernel, propagated to every worker
        /// that claims chunks (-1 outside a sanitize session: no rebinding).
        int actor;
        /// next and active_workers sit on separate cache lines: next is
        /// hammered by every participant's fetch_add while active_workers
        /// only changes on join/leave, and sharing a line would put that
        /// contention on the scheduling path of every chunk.
        alignas(64) std::atomic<std::size_t> next{0};
        alignas(64) std::atomic<std::size_t> active_workers{0};
    };

    static void run_job(job& j);
    /// Returns the first published job with unclaimed work, else nullptr.
    /// Caller must hold mutex_.
    [[nodiscard]] job* pick_job();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    /// Jobs with possibly-unclaimed work; publication and retirement happen
    /// under mutex_, claiming chunks is lock-free via job::next.
    std::vector<job*> jobs_;
    /// One-shot tasks from post(); drained FIFO by workers, ahead of jobs.
    std::deque<detail::small_function<void()>> tasks_;
    bool stop_ = false;
};

}  // namespace syclite
