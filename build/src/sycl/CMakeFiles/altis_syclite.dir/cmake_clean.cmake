file(REMOVE_RECURSE
  "CMakeFiles/altis_syclite.dir/queue.cpp.o"
  "CMakeFiles/altis_syclite.dir/queue.cpp.o.d"
  "CMakeFiles/altis_syclite.dir/thread_pool.cpp.o"
  "CMakeFiles/altis_syclite.dir/thread_pool.cpp.o.d"
  "libaltis_syclite.a"
  "libaltis_syclite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altis_syclite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
