// Regenerates Figure 4: speedup of the "FPGA Optimized" over the "FPGA
// Baseline" implementations on the Stratix 10, sizes 1-3, plus geometric
// means. (DWT2D has no optimized FPGA version -- Sec. 5.4 -- and is absent,
// exactly as in the figure.)
#include <iostream>

#include "apps/common/suite.hpp"
#include "core/report.hpp"
#include "core/result_database.hpp"
#include "trace/harness.hpp"

int main(int argc, char** argv) {
    altis::trace::cli_harness trace_harness("fig4_fpga_opt");
    if (const int rc = trace_harness.parse(argc, argv); rc >= 0) return rc;

    using altis::Table;
    using altis::Variant;
    namespace bench = altis::bench;

    std::cout << "Figure 4: Speedup of FPGA Optimized over FPGA Baseline on "
                 "Stratix 10\n\n";
    Table t({"Application", "Size 1", "Size 2", "Size 3", "Paper S1",
             "Paper S2", "Paper S3"});
    altis::ResultDatabase db;
    for (const auto& e : bench::suite()) {
        if (!e.in_fig45) continue;
        std::vector<std::string> row{e.label};
        for (int size : {1, 2, 3}) {
            const auto base =
                bench::total_ms(e, Variant::fpga_base, "stratix_10", size);
            const auto opt =
                bench::total_ms(e, Variant::fpga_opt, "stratix_10", size);
            if (!base || !opt) {
                row.push_back("n/a");
                continue;
            }
            const double s = *base / *opt;
            db.add_result("speedup_size" + std::to_string(size), e.label, "x", s);
            row.push_back(Table::num(s, 1));
        }
        for (int i = 0; i < 3; ++i)
            row.push_back(Table::num(e.paper_fig4[static_cast<std::size_t>(i)], 1));
        t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "geomean: size1 " << Table::num(db.geomean("speedup_size1"), 1)
              << ", size2 " << Table::num(db.geomean("speedup_size2"), 1)
              << ", size3 " << Table::num(db.geomean("speedup_size3"), 1)
              << "   (paper: 10.7 / 20.7 / 35.6)\n";
    return trace_harness.finish();
}
