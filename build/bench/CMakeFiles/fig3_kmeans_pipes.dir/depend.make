# Empty dependencies file for fig3_kmeans_pipes.
# This may be replaced when dependencies are built.
