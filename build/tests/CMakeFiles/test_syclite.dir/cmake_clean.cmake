file(REMOVE_RECURSE
  "CMakeFiles/test_syclite.dir/sycl/test_buffer.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_buffer.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_compute_units.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_compute_units.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_group_algorithms.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_group_algorithms.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_hierarchical.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_hierarchical.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_pipe.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_pipe.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_queue.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_queue.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_range.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_range.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_thread_pool.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_thread_pool.cpp.o.d"
  "CMakeFiles/test_syclite.dir/sycl/test_usm.cpp.o"
  "CMakeFiles/test_syclite.dir/sycl/test_usm.cpp.o.d"
  "test_syclite"
  "test_syclite.pdb"
  "test_syclite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syclite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
