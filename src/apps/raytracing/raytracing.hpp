// Raytracing: path-traced sphere scene (Altis Level-2). Paper roles: the
// biggest migration refactor -- CUDA's virtual functions for objects and
// materials are unsupported in SYCL, so materials become the flat float8
// class of Listing 1 (reproduced verbatim here) -- plus the RNG swap from
// cuRAND XORWOW to oneMKL philox4x32x10 (Sec. 3.3), which together make the
// SYCL version ~12-22x faster on the RTX 2080 but "not directly comparable".
// On FPGAs: ND-Range with a 30x (Stratix 10) / 16x (Agilex) unrolled
// sphere-intersection loop (Table 3, Sec. 5.5).
#pragma once

#include <array>
#include <vector>

#include "apps/common/app.hpp"
#include "apps/common/region.hpp"

namespace altis::apps::raytracing {

struct vec3 {
    float x = 0, y = 0, z = 0;
};

/// Listing 1 (optimized): all material parameters fused into one 8-float
/// vector so the FPGA compiler infers a stall-free memory system.
///   data[0]: "fuzz"       (metal)
///   data[1]: "ref_idx"    (dielectric)
///   data[2:4]: "albedo"   (lambertian and metal)
///   data[5]: material type: metal (0), dielectric (1), lambertian (2)
///   data[6:7]: unused
struct material {
    std::array<float, 8> data{};

    enum type : int { metal = 0, dielectric = 1, lambertian = 2 };

    [[nodiscard]] static material make_metal(vec3 albedo, float fuzz);
    [[nodiscard]] static material make_dielectric(float ref_idx);
    [[nodiscard]] static material make_lambertian(vec3 albedo);

    [[nodiscard]] int kind() const { return static_cast<int>(data[5]); }
};

struct sphere {
    vec3 center;
    float radius = 1.0f;
    material mat;
};

enum class rng_kind {
    xorwow,  ///< cuRAND default -- the original CUDA path
    philox,  ///< oneMKL philox4x32x10 -- what DPCT migrates to
};

struct params {
    std::size_t width = 256, height = 256;
    int samples = 4;
    int max_depth = 8;
    std::uint64_t seed = 0x7ace5ULL;

    [[nodiscard]] static params preset(int size);
    [[nodiscard]] std::size_t pixels() const { return width * height; }
};

/// The fixed demo scene (ground + grid of small spheres + three hero
/// spheres), ~23 spheres, all three material types.
[[nodiscard]] std::vector<sphere> make_scene();

/// Host reference render with the given generator.
[[nodiscard]] std::vector<vec3> golden(const params& p, rng_kind kind);

/// Dynamic workload statistics measured on a low-resolution probe
/// (resolution-stable): rays per pixel-sample and sphere tests per ray.
struct trace_profile {
    double mean_bounces = 0.0;
    double tests_per_ray = 0.0;
};
[[nodiscard]] trace_profile probe_profile(const params& p);

AppResult run(const RunConfig& cfg);

[[nodiscard]] timed_region region(Variant v, const perf::device_spec& dev,
                                  int size);
[[nodiscard]] std::vector<perf::kernel_stats> fpga_design(
    const perf::device_spec& dev, int size);

inline constexpr const char* kFpgaImplLabel = "ND-Range";

void register_app();

}  // namespace altis::apps::raytracing
