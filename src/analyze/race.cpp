#include "analyze/race.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "metrics/instruments.hpp"

namespace altis::analyze {

namespace {

/// "mem#3[128..256)" -> "mem#3": one finding per actor pair (R1) or kernel
/// (D1) per memory object, not per overlap fragment.
std::string label_prefix(const std::string& label) {
    const auto p = label.find('[');
    return p == std::string::npos ? label : label.substr(0, p);
}

const char* mode_word(bool write) { return write ? "write" : "read"; }

void lint_unordered_pairs(const shadow::store& s, report& r) {
    const std::vector<shadow::interval> ivs = s.merged_intervals();
    std::uint64_t checks = 0;
    std::set<std::tuple<int, int, std::string>> reported;
    for (std::size_t i = 0; i < ivs.size(); ++i) {
        const shadow::interval& a = ivs[i];
        for (std::size_t j = i + 1; j < ivs.size() && ivs[j].lo < a.hi; ++j) {
            const shadow::interval& b = ivs[j];
            if (a.actor == b.actor) continue;
            if (!a.write && !b.write) continue;
            ++checks;
            if (s.hb(a, b) || s.hb(b, a)) continue;
            const shadow::interval& lo_actor = a.actor < b.actor ? a : b;
            const shadow::interval& hi_actor = a.actor < b.actor ? b : a;
            const std::string label =
                s.label_range(std::max(a.lo, b.lo), std::min(a.hi, b.hi));
            if (!reported
                     .emplace(lo_actor.actor, hi_actor.actor,
                              label_prefix(label))
                     .second)
                continue;
            r.add(make_finding(
                "ALS-R1",
                s.actor_name(lo_actor.actor) + ", " +
                    s.actor_name(hi_actor.actor),
                label,
                std::string(mode_word(lo_actor.write)) + " by '" +
                    s.actor_name(lo_actor.actor) + "' and " +
                    mode_word(hi_actor.write) + " by '" +
                    s.actor_name(hi_actor.actor) + "' overlap on " + label +
                    " with no happens-before edge in either direction"));
        }
    }
    if (altis::metrics::collecting())
        altis::metrics::instruments::sanitize_race_checks().add(checks);
}

void lint_round_skew(const shadow::store& s, const command_graph& g,
                     report& r) {
    // Deterministic traversal: the shadow's pipe map is unordered.
    std::vector<std::pair<const void*, const shadow::pipe_log*>> logs;
    logs.reserve(s.pipe_logs().size());
    for (const auto& [ptr, log] : s.pipe_logs()) logs.emplace_back(ptr, &log);
    std::sort(logs.begin(), logs.end(), [](const auto& x, const auto& y) {
        return x.second->name < y.second->name;
    });
    for (const auto& [ptr, log] : logs) {
        // Round geometry comes from the endpoint declarations; the rule only
        // applies when both sides agree on an integral per-round volume.
        double ipr_w = 0.0;
        double ipr_r = 0.0;
        for (const node& n : g.nodes)
            for (const pipe_endpoint& pe : n.pipes) {
                if (pe.pipe != ptr) continue;
                (pe.dir == pipe_dir::write ? ipr_w : ipr_r) =
                    pe.items_per_round;
            }
        if (ipr_w <= 0.0 || ipr_w != ipr_r || ipr_w != std::floor(ipr_w))
            continue;
        const auto ipr = static_cast<std::uint64_t>(ipr_w);
        if (ipr < 2) continue;  // every boundary is a whole round
        for (const shadow::pipe_recv& rec : log->recvs) {
            const std::uint64_t boundary = (rec.from / ipr + 1) * ipr;
            if (boundary >= rec.to) continue;
            r.add(make_finding(
                "ALS-R2", s.actor_name(log->consumer), log->name,
                "receive of items [" + std::to_string(rec.from) + ".." +
                    std::to_string(rec.to) + ") from pipe '" + log->name +
                    "' spans the round boundary at item " +
                    std::to_string(boundary) + " (items_per_round = " +
                    std::to_string(ipr) +
                    "): the consumer mixes two rounds in one read"));
            break;  // one finding per pipe
        }
    }
}

void lint_declaration_drift(const shadow::store& s, const command_graph& g,
                            report& r) {
    const std::vector<shadow::interval> ivs = s.merged_intervals();
    std::set<std::pair<std::string, std::string>> reported;
    for (const node& n : g.nodes) {
        if (n.kind != node_kind::kernel || n.simulated || n.actor <= 0)
            continue;
        std::vector<std::pair<std::uint64_t, std::uint64_t>> declared;
        for (const mem_access& a : n.accesses) {
            if (a.bytes == 0) continue;
            const auto lo = reinterpret_cast<std::uint64_t>(a.base);
            declared.emplace_back(lo, lo + a.bytes);
        }
        std::sort(declared.begin(), declared.end());
        for (const shadow::interval& iv : ivs) {
            if (iv.actor != n.actor) continue;
            // First observed byte not covered by any declared range.
            std::uint64_t pos = iv.lo;
            bool moved = true;
            while (moved && pos < iv.hi) {
                moved = false;
                for (const auto& d : declared)
                    if (d.first <= pos && pos < d.second) {
                        pos = d.second;
                        moved = true;
                    }
            }
            if (pos >= iv.hi) continue;
            std::uint64_t uncovered_hi = iv.hi;
            for (const auto& d : declared)
                if (d.first > pos) uncovered_hi = std::min(uncovered_hi, d.first);
            const std::string label = s.label_range(pos, uncovered_hi);
            if (!reported.emplace(n.kernel, label_prefix(label)).second)
                continue;
            r.add(make_finding(
                "ALS-D1", n.kernel, label,
                "observed " + std::string(mode_word(iv.write)) + " of " +
                    label + " is outside every accessor/USM range kernel '" +
                    n.kernel + "' declared"));
        }
    }
}

}  // namespace

void lint_races(const shadow::store& s, const command_graph& g, report& r) {
    lint_unordered_pairs(s, r);
    lint_round_skew(s, g, r);
    lint_declaration_drift(s, g, r);
}

}  // namespace altis::analyze
