// The clean-tree guarantee: running the whole registered suite under the
// sanitizer produces zero findings, functionally (real queues, default
// variant/device) and over the bench descriptors (sizes 1-3). A finding here
// is either a real bug in an app or a false positive in a rule -- both block.
#include <gtest/gtest.h>

#include <sstream>

#include "analyze/sanitize.hpp"
#include "apps/common/app.hpp"
#include "apps/common/suite.hpp"
#include "core/registry.hpp"
#include "core/result_database.hpp"

namespace altis::analyze {
namespace {

std::string render(const report& r) {
    std::ostringstream os;
    r.render_text(os);
    return os.str();
}

TEST(CleanApps, FunctionalRunOfEveryAppHasZeroFindings) {
    apps::register_all_apps();
    RunConfig cfg;
    cfg.size = 1;
    cfg.passes = 1;

    for (const auto& app : Registry::instance().apps()) {
        recorder rec;
        {
            recorder::scope scope(rec);
            ResultDatabase db;
            ASSERT_NO_THROW(app.run(cfg, db)) << app.name;
        }
        const report r = run_all(rec);
        EXPECT_TRUE(r.empty()) << app.name << ":\n" << render(r);
        EXPECT_FALSE(rec.graph().empty()) << app.name
                                          << ": recorder captured nothing";
    }
}

TEST(CleanApps, SuiteDescriptorsHaveZeroFindings) {
    // The shipping configurations: migrated/optimized SYCL on CPU and GPUs,
    // the FPGA-refactored variants on their boards. (cuda and fpga_base carry
    // the paper's documented "before" traps by design and are exercised in
    // test_perf_lint.cpp instead.)
    const struct {
        Variant v;
        const char* device;
    } configs[] = {
        {Variant::sycl_opt, "xeon_6128"},
        {Variant::sycl_opt, "rtx_2080"},
        {Variant::sycl_opt, "a100"},
        {Variant::fpga_opt, "stratix_10"},
        {Variant::fpga_opt, "agilex"},
    };
    for (const auto& cfg : configs) {
        const auto& dev = perf::device_by_name(cfg.device);
        recorder rec;
        for (const auto& e : bench::suite()) {
            for (int size = 1; size <= 3; ++size) {
                if (e.crashes && e.crashes(dev, cfg.v, size)) continue;
                try {
                    const auto region = e.region(cfg.v, dev, size);
                    for (const auto& k : region.all_kernels())
                        rec.record_simulated_kernel(k, dev);
                } catch (const std::exception&) {
                    // Configurations an entry does not implement.
                }
            }
        }
        const report r = run_all(rec);
        EXPECT_TRUE(r.empty()) << to_string(cfg.v) << "/" << cfg.device
                               << ":\n" << render(r);
    }
}

}  // namespace
}  // namespace altis::analyze
